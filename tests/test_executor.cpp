// Arena execution tests: MemoryPlanner placement safety, Executor reuse
// bit-identity, the zero-heap-allocation steady-state guarantee, and the
// persistent serving pool (stress vs sequential reference, early error
// exit, latency stats).
#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "api/bswp.h"
// Replaces global operator new for this test binary so the steady-state
// zero-allocation claim is asserted, not assumed.
#include "core/counting_allocator.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "runtime/serving_pool.h"

namespace bswp::runtime {
namespace {

// --- environment -------------------------------------------------------------

data::SyntheticCifarOptions data_opts() {
  data::SyntheticCifarOptions o;
  o.train_size = 48;
  o.image_size = 12;
  return o;
}

/// Small conv net (conv/BN/relu/maxpool/conv/relu/gap/linear) with BN stats
/// seeded — same plumbing-scale setup as test_api.
struct Env {
  nn::Graph graph;
  data::SyntheticCifar data{data_opts(), true};
  Tensor sample{std::vector<int>{1, 3, 12, 12}};

  Env() {
    int x = graph.input(3, 12, 12);
    x = graph.conv2d(x, 16, 3, 1, 1);
    x = graph.batchnorm(x);
    x = graph.relu(x);
    x = graph.maxpool(x, 2, 2);
    x = graph.conv2d(x, 24, 3, 1, 1);
    x = graph.relu(x);
    x = graph.global_avgpool(x);
    graph.linear(x, 4);
    Rng rng(3);
    graph.init_weights(rng);
    data::Batch b = data.batch(0, 16);
    graph.forward(b.images, true);
    data.sample(0, sample.data());
  }
};

Env& env() {
  static Env e;
  return e;
}

bswp::Session pooled_session() {
  Env& e = env();
  pool::CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 5;
  quant::CalibrateOptions qo;
  qo.num_samples = 16;
  return bswp::Deployment::from(e.graph).with_pool(co).calibrate(e.data, qo).compile();
}

Tensor image_at(int i) {
  Env& e = env();
  Tensor x({1, 3, 12, 12});
  e.data.sample(i % e.data.size(), x.data());
  return x;
}

// --- MemoryPlanner -----------------------------------------------------------

void expect_no_live_overlap(const MemoryPlan& mp, const char* tag) {
  const std::size_t n = mp.buffers.size();
  for (std::size_t a = 0; a < n; ++a) {
    const BufferPlacement& ba = mp.buffers[a];
    EXPECT_LE(ba.offset + ba.bytes, mp.act_bytes) << tag << ": buffer " << a << " out of arena";
    EXPECT_EQ(ba.offset % MemoryPlanner::kAlign, 0u) << tag << ": buffer " << a << " unaligned";
    for (std::size_t b = a + 1; b < n; ++b) {
      const BufferPlacement& bb = mp.buffers[b];
      const bool time_overlap = ba.def <= bb.last_use && bb.def <= ba.last_use;
      if (!time_overlap) continue;
      // Declared in-place pairs may share bytes: the consumer overwrites an
      // input that dies at it (rolling conv, accumulate-in-place add, ...).
      if (bb.inplace_of == static_cast<int>(a) || ba.inplace_of == static_cast<int>(b)) continue;
      const bool byte_overlap =
          ba.offset < bb.offset + bb.bytes && bb.offset < ba.offset + ba.bytes;
      EXPECT_FALSE(byte_overlap) << tag << ": live buffers " << a << " (plans " << ba.def << ".."
                                 << ba.last_use << ") and " << b << " (plans " << bb.def << ".."
                                 << bb.last_use << ") share bytes";
    }
  }
}

TEST(MemoryPlanner, NoLiveOverlapAcrossModelZoo) {
  // Every paper network (TinyConv, three ResNets, MobileNet-v2) at a small
  // width: residual forks, depthwise stages and flatten/linear tails all
  // produce valid, overlap-free placements under both sizing models.
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.num_classes = 4;
  mo.width = 0.25f;
  for (const models::NamedModel& m : models::paper_models()) {
    nn::Graph g = m.build(mo);
    Rng rng(5);
    g.init_weights(rng);
    quant::CalibrationResult cal;
    cal.input_abs_max = 1.0f;
    for (int i = 0; i < g.num_nodes(); ++i) {
      cal.node_range[i] = 1.0f;
      cal.node_abs_range[i] = 1.0f;
    }
    CompiledNetwork net = compile(g, nullptr, cal, CompileOptions{});
    Executor exec(net);  // resolves backends, builds the host plan
    expect_no_live_overlap(exec.memory_plan(), m.name.c_str());
    expect_no_live_overlap(MemoryPlanner::plan_mcu(net), m.name.c_str());
  }
}

TEST(MemoryPlanner, ReusesDeadSlots) {
  // A deep chain must not sum all activations: liveness reuse keeps the
  // arena far below the total-footprint upper bound.
  bswp::Session s = pooled_session();
  const MemoryPlan mp = MemoryPlanner::plan_mcu(s.network());
  std::size_t total = 0;
  for (const BufferPlacement& b : mp.buffers) total += b.bytes;
  EXPECT_LT(mp.act_bytes, total);
  EXPECT_GT(mp.act_bytes, 0u);
}

TEST(MemoryPlanner, FootprintSramComesFromPlan) {
  // The simulator's peak-SRAM number and the planner's MCU arena are the
  // same artifact — no more divergence between footprint() and execution.
  bswp::Session s = pooled_session();
  const sim::MemoryFootprint fp = s.footprint();
  EXPECT_EQ(fp.sram_bytes, MemoryPlanner::plan_mcu(s.network()).peak_bytes());
}

// --- Executor ----------------------------------------------------------------

TEST(Executor, ReusedArenaBitIdenticalToFresh) {
  bswp::Session s = pooled_session();
  Executor reused(s.network());
  // Repeated and interleaved inputs through one executor must match a fresh
  // executor per image (stale arena contents must never leak into results).
  const Tensor a = image_at(0), b = image_at(1), c = image_at(2);
  const QTensor fa = Executor(s.network()).run(a);
  const QTensor fb = Executor(s.network()).run(b);
  const QTensor fc = Executor(s.network()).run(c);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(reused.run(a).data, fa.data) << "round " << round;
    EXPECT_EQ(reused.run(b).data, fb.data) << "round " << round;
    EXPECT_EQ(reused.run(a).data, fa.data) << "round " << round;  // interleaved repeat
    EXPECT_EQ(reused.run(c).data, fc.data) << "round " << round;
  }
}

TEST(Executor, SteadyStateRunIsAllocationFree) {
  bswp::Session s = pooled_session();
  Executor exec(s.network());
  const Tensor x = image_at(3);
  exec.run_view(x);  // warm-up (construction already allocated everything)
  const std::uint64_t before = bswp::alloc_count();
  for (int i = 0; i < 10; ++i) exec.run_view(x);
  const std::uint64_t after = bswp::alloc_count();
  EXPECT_EQ(after, before) << "Executor::run_view allocated on the heap in steady state";
}

TEST(Executor, ScratchStaysWithinPlan) {
  bswp::Session s = pooled_session();
  Executor exec(s.network());
  exec.run_view(image_at(4));
  EXPECT_LE(exec.scratch_high_water(), exec.memory_plan().scratch_bytes);
  EXPECT_GT(exec.memory_plan().scratch_bytes, 0u);  // bit-serial layers need scratch
}

TEST(Executor, MatchesSessionRun) {
  bswp::Session s = pooled_session();
  Executor exec(s.network());
  for (int i = 0; i < 4; ++i) {
    const Tensor x = image_at(i);
    EXPECT_EQ(exec.run(x).data, s.run(x).data);
  }
}

// --- layer-boundary cancellation ---------------------------------------------

TEST(CancelToken, ManualFlagAndDisarmedDefaults) {
  CancelToken t;
  EXPECT_FALSE(t.should_cancel(0));  // disarmed, unset: never trips
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(t.should_cancel(0));
  EXPECT_TRUE(t.should_cancel(17));
  t.disarm();  // clears the manual flag too
  EXPECT_FALSE(t.should_cancel(0));
}

TEST(CancelToken, ArmedScheduleTripsWhenRemainingExceedsSlack) {
  // Deterministic on a ManualClock: slack is deadline - virtual now, and
  // layer p trips once remaining_us[p] * scale exceeds it.
  ManualClock clock;
  const double remaining[3] = {300.0, 200.0, 100.0};
  CancelToken t;
  t.arm(&clock, clock.now() + std::chrono::microseconds(250), remaining, 3, 1.0);
  EXPECT_TRUE(t.should_cancel(0));   // 300 us of work, 250 us of slack
  EXPECT_FALSE(t.should_cancel(1));  // 200 <= 250
  EXPECT_FALSE(t.should_cancel(2));

  clock.advance(std::chrono::microseconds(100));  // slack 150
  EXPECT_TRUE(t.should_cancel(1));
  EXPECT_FALSE(t.should_cancel(2));  // 100 <= 150

  clock.advance(std::chrono::microseconds(100));  // slack 50
  EXPECT_TRUE(t.should_cancel(2));

  clock.advance(std::chrono::microseconds(100));  // past the deadline
  EXPECT_TRUE(t.should_cancel(99));  // beyond the schedule: deadline still applies

  t.disarm();
  EXPECT_FALSE(t.should_cancel(0));

  // The calibration scale inflates the schedule: 200 * 2 > 250.
  t.arm(&clock, clock.now() + std::chrono::microseconds(250), remaining, 3, 2.0);
  EXPECT_TRUE(t.should_cancel(1));
  EXPECT_FALSE(t.should_cancel(2));  // 100 * 2 <= 250
}

TEST(Executor, PreCancelledTokenAbortsBeforeLayerZero) {
  bswp::Session s = pooled_session();
  Executor exec(s.network());
  CancelToken t;
  t.cancel();
  EXPECT_THROW(exec.run(image_at(0), nullptr, &t), ExecutionCancelled);
  // ExecutionCancelled is a deliberate shed, not an engine fault — callers
  // must be able to tell them apart by type.
  try {
    exec.run_view(image_at(0), nullptr, &t);
    FAIL() << "cancelled run returned a view";
  } catch (const ExecutionCancelled&) {
  }
}

TEST(Executor, AbandonedRunLeavesNoPartialStateAndRerunsBitIdentical) {
  bswp::Session s = pooled_session();
  Executor exec(s.network());
  const Tensor a = image_at(0), b = image_at(1);
  const QTensor ref_a = Executor(s.network()).run(a);
  const QTensor ref_b = Executor(s.network()).run(b);
  const std::size_t layers = s.network().plans.size();
  ASSERT_GE(layers, 2u);

  // A hand-built remaining schedule that trips exactly at layer `cut`: zero
  // estimated work before it, an impossible amount at and after it. The run
  // is abandoned mid-plan with the arena holding partial layer outputs.
  ManualClock clock;
  std::vector<double> remaining(layers, 1e12);
  for (std::size_t cut = 1; cut < layers; ++cut) {
    std::fill(remaining.begin(), remaining.begin() + static_cast<std::ptrdiff_t>(cut), 0.0);
    CancelToken t;
    t.arm(&clock, clock.now() + std::chrono::milliseconds(1), remaining.data(), layers, 1.0);
    try {
      exec.run(a, nullptr, &t);
      FAIL() << "run with an unreachable deadline completed (cut " << cut << ")";
    } catch (const ExecutionCancelled&) {
    }
    // The abandoned arena must not leak into later runs: the very next
    // un-cancelled runs are bit-identical to a fresh executor's.
    EXPECT_EQ(exec.run(b).data, ref_b.data) << "cut " << cut;
    EXPECT_EQ(exec.run(a).data, ref_a.data) << "cut " << cut;
  }

  // Cancellation checks cost nothing when the token stays quiet: a run with
  // an armed-but-slack token completes and stays allocation-free.
  CancelToken quiet;
  std::vector<double> none(layers, 0.0);
  quiet.arm(&clock, clock.now() + std::chrono::hours(1), none.data(), layers, 1.0);
  exec.run_view(a, nullptr, &quiet);  // warm-up
  const std::uint64_t before = bswp::alloc_count();
  for (int i = 0; i < 5; ++i) exec.run_view(a, nullptr, &quiet);
  EXPECT_EQ(bswp::alloc_count(), before)
      << "cancellation checks allocated on the steady-state path";
  EXPECT_EQ(exec.run(a).data, ref_a.data);
}

// --- serving pool ------------------------------------------------------------

TEST(ServingPool, StressBitIdenticalToSequentialAcrossWorkerCounts) {
  bswp::Session s = pooled_session();
  std::vector<Tensor> images;
  for (int i = 0; i < 40; ++i) images.push_back(image_at(i));

  std::vector<QTensor> ref;
  for (const Tensor& x : images) ref.push_back(s.run(x));

  for (int workers : {1, 2, 4, 8}) {
    // Two batches per worker count: the second reuses the warm pool.
    for (int batch = 0; batch < 2; ++batch) {
      const std::vector<QTensor> got = s.run_batch(images, workers);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i].data, ref[i].data)
            << "workers=" << workers << " batch=" << batch << " image=" << i;
        EXPECT_EQ(got[i].scale, ref[i].scale);
      }
    }
  }
}

TEST(ServingPool, BatchStatsReportLatencyPercentiles) {
  bswp::Session s = pooled_session();
  std::vector<Tensor> images;
  for (int i = 0; i < 16; ++i) images.push_back(image_at(i));
  const bswp::BatchResult r = s.run_batch_stats(images, 4);
  ASSERT_EQ(r.logits.size(), images.size());
  EXPECT_EQ(r.stats.images, images.size());
  EXPECT_GE(r.stats.workers, 1);
  EXPECT_LE(r.stats.workers, 4);
  EXPECT_EQ(r.stats.latency.count, images.size());
  EXPECT_GT(r.stats.latency.p50_us, 0.0);
  EXPECT_LE(r.stats.latency.p50_us, r.stats.latency.p95_us);
  EXPECT_LE(r.stats.latency.p95_us, r.stats.latency.p99_us);
  EXPECT_GT(r.stats.latency.mean_us, 0.0);
  EXPECT_GT(r.stats.throughput_ips, 0.0);
  EXPECT_GT(r.stats.wall_seconds, 0.0);
}

TEST(ServingPool, FailedBatchLeavesStatsUntouched) {
  // Regression: run() used to zero the caller's stats up front, so a failed
  // batch reported a partially filled struct. Failure must leave it alone.
  bswp::Session s = pooled_session();
  std::vector<Tensor> images;
  for (int i = 0; i < 8; ++i) images.push_back(image_at(i));
  images[3] = Tensor({5, 12, 12}, 0.1f);  // wrong channel count

  bswp::BatchResult r;
  r.stats.images = 777;
  r.stats.workers = -3;
  r.stats.latency.p99_us = 123.0;
  EXPECT_THROW(r.logits = s.run_batch_stats(images, 4).logits, std::invalid_argument);
  // run_batch_stats returns by value, so exercise the pool API directly too.
  ServingPool pool(s.network());
  BatchStats st;
  st.images = 777;
  st.workers = -3;
  st.latency.p99_us = 123.0;
  EXPECT_THROW(pool.run(images, 4, &st), std::invalid_argument);
  EXPECT_EQ(st.images, 777u);
  EXPECT_EQ(st.workers, -3);
  EXPECT_EQ(st.latency.p99_us, 123.0);
  // And the single-worker inline path:
  EXPECT_THROW(pool.run(images, 1, &st), std::invalid_argument);
  EXPECT_EQ(st.images, 777u);
}

TEST(ServingPool, ErrorStopsBatchEarlyAndPoolSurvives) {
  bswp::Session s = pooled_session();
  std::vector<Tensor> images;
  for (int i = 0; i < 12; ++i) images.push_back(image_at(i));
  images[5] = Tensor({5, 12, 12}, 0.1f);  // wrong channel count
  EXPECT_THROW(s.run_batch(images, 4), std::invalid_argument);
  // The pool must stay healthy after a failed batch.
  images[5] = image_at(5);
  const std::vector<QTensor> ok = s.run_batch(images, 4);
  ASSERT_EQ(ok.size(), images.size());
  EXPECT_EQ(ok[5].data, s.run(images[5]).data);
}

}  // namespace
}  // namespace bswp::runtime
