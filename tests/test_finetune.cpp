#include "pool/finetune.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"
#include "pool/grouping.h"

namespace bswp::pool {
namespace {

data::SyntheticCifarOptions data_opts() {
  data::SyntheticCifarOptions o;
  o.num_classes = 4;
  o.train_size = 256;
  o.test_size = 96;
  o.image_size = 16;
  o.noise_stddev = 0.05f;
  return o;
}

struct FinetuneEnv {
  nn::Graph graph;
  data::SyntheticCifar train{data_opts(), true};
  data::SyntheticCifar test{data_opts(), false};

  FinetuneEnv() {
    models::ModelOptions mo;
    mo.image_size = 16;
    mo.num_classes = 4;
    mo.width = 0.25f;
    graph = models::build_resnet_s(mo);
    Rng rng(7);
    graph.init_weights(rng);
    nn::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.batch_size = 32;
    cfg.lr = 0.08f;
    nn::Trainer(cfg).fit(graph, train, test);
  }
};

FinetuneEnv& setup() {
  static FinetuneEnv s;
  return s;
}

bool weights_are_pool_vectors(const nn::Graph& g, const PooledNetwork& net) {
  for (const PooledLayer& l : net.layers) {
    Tensor vecs = extract_z_vectors(g.node(l.node).weight, net.pool.group_size);
    for (int v = 0; v < vecs.dim(0); ++v) {
      const uint16_t idx = l.indices[static_cast<std::size_t>(v)];
      for (int j = 0; j < net.pool.group_size; ++j) {
        if (vecs[static_cast<std::size_t>(v) * net.pool.group_size + j] !=
            net.pool.vectors[static_cast<std::size_t>(idx) * net.pool.group_size + j]) {
          return false;
        }
      }
    }
  }
  return true;
}

TEST(Finetune, ProjectionIsExactAfterTraining) {
  FinetuneEnv& s = setup();
  nn::Graph g = s.graph;
  CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 8;
  PooledNetwork net = build_weight_pool(g, co);

  FinetuneOptions fo;
  fo.train.epochs = 2;
  fo.train.batch_size = 32;
  fo.train.lr = 0.01f;
  finetune_pooled(g, net, s.train, s.test, fo);
  EXPECT_TRUE(weights_are_pool_vectors(g, net));
}

TEST(Finetune, PoolVectorsUnchangedByFinetuning) {
  FinetuneEnv& s = setup();
  nn::Graph g = s.graph;
  CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 8;
  PooledNetwork net = build_weight_pool(g, co);
  const Tensor pool_before = net.pool.vectors;

  FinetuneOptions fo;
  fo.train.epochs = 1;
  fo.train.batch_size = 32;
  fo.train.lr = 0.01f;
  finetune_pooled(g, net, s.train, s.test, fo);
  for (std::size_t i = 0; i < pool_before.size(); ++i) {
    EXPECT_EQ(net.pool.vectors[i], pool_before[i]);  // pool is frozen
  }
}

TEST(Finetune, RecoversAccuracyLostToProjection) {
  FinetuneEnv& s = setup();
  const float float_acc = nn::evaluate(s.graph, s.test);

  nn::Graph g = s.graph;
  CodecOptions co;
  co.pool_size = 8;  // aggressive pool so projection visibly hurts
  co.kmeans_iters = 10;
  PooledNetwork net = build_weight_pool(g, co);
  project_to_pool(g, net);
  const float projected_acc = nn::evaluate(g, s.test);

  FinetuneOptions fo;
  fo.train.epochs = 3;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;
  const nn::TrainStats stats = finetune_pooled(g, net, s.train, s.test, fo);
  EXPECT_GE(stats.final_test_acc + 2.0f, projected_acc);  // no collapse
  // Typically recovers toward float accuracy; assert it at least moves up
  // when projection cost something.
  if (projected_acc < float_acc - 5.0f) {
    EXPECT_GT(stats.final_test_acc, projected_acc - 1.0f);
  }
}

TEST(Finetune, IndicesCanMigrateDuringTraining) {
  FinetuneEnv& s = setup();
  nn::Graph g = s.graph;
  CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 8;
  PooledNetwork net = build_weight_pool(g, co);
  std::vector<std::vector<uint16_t>> before;
  for (const auto& l : net.layers) before.push_back(l.indices);
  FinetuneOptions fo;
  fo.train.epochs = 2;
  fo.train.batch_size = 32;
  fo.train.lr = 0.1f;  // big enough steps to flip some assignments
  finetune_pooled(g, net, s.train, s.test, fo);
  bool any_changed = false;
  for (std::size_t l = 0; l < net.layers.size(); ++l) {
    if (net.layers[l].indices != before[l]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(Finetune, EpochBoundaryProjectionAlsoEndsProjected) {
  FinetuneEnv& s = setup();
  nn::Graph g = s.graph;
  CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 8;
  PooledNetwork net = build_weight_pool(g, co);
  FinetuneOptions fo;
  fo.project_every_step = false;
  fo.train.epochs = 1;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;
  finetune_pooled(g, net, s.train, s.test, fo);
  EXPECT_TRUE(weights_are_pool_vectors(g, net));
}

}  // namespace
}  // namespace bswp::pool
