// Front-door tests: consistent-hash ring stability (shard loss remaps only
// the lost shard's segment; recovery restores the original mapping), result
// cache bit-identity + LRU eviction + capacity-0 disable, cluster-served
// results bit-identical to Session::run under a concurrent multi-client
// storm, failover under an induced mid-run shard outage (every accepted
// future resolves), kFailFast refusal semantics, and cross-shard stats
// aggregation (merged latency windows, dispatch shares). Everything here
// also runs under the TSan CI job — this suite is the concurrency contract
// of the cluster layer, the way test_server.cpp is for one shard.
#include "runtime/frontdoor/front_door.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "runtime/frontdoor/hash_ring.h"
#include "runtime/frontdoor/result_cache.h"
#include "runtime/pipeline.h"

namespace bswp::runtime {
namespace {

using namespace std::chrono_literals;

// --- HashRing ----------------------------------------------------------------

TEST(HashRing, OwnerIsStableAndCandidatesAreDistinct) {
  HashRing ring(4, 64);
  Rng rng(5);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t key = rng.next_u64();
    const int owner = ring.shard_for(key);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
    EXPECT_EQ(owner, ring.shard_for(key));  // deterministic
    const std::vector<int> cands = ring.candidates(key);
    EXPECT_EQ(cands.size(), 4u);
    EXPECT_EQ(cands[0], owner);
    EXPECT_EQ(std::set<int>(cands.begin(), cands.end()).size(), 4u);
  }
}

TEST(HashRing, RemovingOneShardRemapsOnlyItsKeysAndRecoveryRestoresAll) {
  const int kShards = 4;
  const int kKeys = 10000;
  HashRing ring(kShards, 64);
  Rng rng(7);
  std::vector<std::uint64_t> keys;
  std::vector<int> before;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(rng.next_u64());
    before.push_back(ring.shard_for(keys.back()));
  }

  std::vector<bool> alive(kShards, true);
  alive[1] = false;  // shard 1 dies
  int remapped = 0;
  for (int i = 0; i < kKeys; ++i) {
    const int now = ring.shard_for_live(keys[i], alive);
    EXPECT_NE(now, 1);
    if (before[static_cast<std::size_t>(i)] != 1) {
      // Surviving shards keep every key they owned — only the dead shard's
      // segment moves.
      EXPECT_EQ(now, before[static_cast<std::size_t>(i)]);
    } else {
      ++remapped;
    }
  }
  // ~1/4 of the keys lived on shard 1; vnode variance keeps it well under
  // the ~35% bound the docs promise for a 4-shard ring.
  EXPECT_GT(remapped, kKeys / 8);
  EXPECT_LT(remapped, kKeys * 35 / 100);

  // Recovery: the ring was never mutated, so the original mapping returns
  // exactly.
  alive[1] = true;
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(ring.shard_for_live(keys[i], alive),
              before[static_cast<std::size_t>(i)]);
  }
}

TEST(HashRing, VnodesSpreadKeysRoughlyEvenly) {
  const int kShards = 4;
  const int kKeys = 10000;
  HashRing ring(kShards, 64);
  Rng rng(11);
  std::vector<int> count(kShards, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++count[static_cast<std::size_t>(ring.shard_for(rng.next_u64()))];
  }
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(count[static_cast<std::size_t>(s)], kKeys * 10 / 100);
    EXPECT_LT(count[static_cast<std::size_t>(s)], kKeys * 45 / 100);
  }
}

// --- RequestKey / ResultCache ------------------------------------------------

Tensor tiny_tensor(std::initializer_list<float> vals) {
  return Tensor({1, static_cast<int>(vals.size())}, std::vector<float>(vals));
}

TEST(RequestKey, KeysOnExactBits) {
  const Tensor a = tiny_tensor({1.0f, 2.0f});
  EXPECT_EQ(RequestKey::of("m", a), RequestKey::of("m", a));
  // Different model, same bits -> different key.
  EXPECT_FALSE(RequestKey::of("m", a) == RequestKey::of("n", a));
  // Bit-different, value-equal floats -> different keys (the contract is
  // bit-identity, not numeric equality).
  EXPECT_FALSE(RequestKey::of("m", tiny_tensor({0.0f, 1.0f})) ==
               RequestKey::of("m", tiny_tensor({-0.0f, 1.0f})));
  // Same bytes, different shape -> different key.
  Tensor b = a;
  b.reshape({2, 1});
  EXPECT_FALSE(RequestKey::of("m", a) == RequestKey::of("m", b));
}

QTensor marker_result(int16_t v, float scale = 1.0f) {
  QTensor q({1, 2}, 8, true);
  q.data[0] = v;
  q.data[1] = static_cast<int16_t>(-v);
  q.scale = scale;
  return q;
}

TEST(ResultCache, LruEvictionAndBitExactRoundTrip) {
  ResultCache cache(2);
  const RequestKey k1{1, 10}, k2{2, 20}, k3{3, 30};
  cache.put(k1, marker_result(7, 0.5f));
  cache.put(k2, marker_result(8));
  // Hit k1 so k2 becomes the LRU entry, then insert k3 -> k2 evicted.
  const auto hit = cache.get(k1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data[0], 7);
  EXPECT_EQ(hit->data[1], -7);
  EXPECT_EQ(hit->scale, 0.5f);  // quantization metadata round-trips too
  cache.put(k3, marker_result(9));
  EXPECT_TRUE(cache.get(k1).has_value());
  EXPECT_FALSE(cache.get(k2).has_value());
  EXPECT_TRUE(cache.get(k3).has_value());

  const ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(ResultCache, CapacityZeroDisablesEverything) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put(RequestKey{1, 1}, marker_result(1));
  EXPECT_FALSE(cache.get(RequestKey{1, 1}).has_value());
  const ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.insertions + s.entries, 0u);
}

TEST(ResultCache, ResetStatsKeepsEntriesWarm) {
  ResultCache cache(4);
  cache.put(RequestKey{1, 1}, marker_result(1));
  cache.get(RequestKey{1, 1});
  cache.reset_stats();
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 1u);                        // still resident
  EXPECT_TRUE(cache.get(RequestKey{1, 1}).has_value());  // still a hit
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

// --- environment -------------------------------------------------------------

/// Compile a model through the pass pipeline with a unit-range synthetic
/// calibration (no pool, no training) — identical idiom to test_server.cpp.
bswp::Session compile_session(const models::NamedModel& m,
                              const models::ModelOptions& mo, uint64_t seed) {
  nn::Graph g = m.build(mo);
  Rng rng(seed);
  g.init_weights(rng);
  quant::CalibrationResult cal;
  cal.input_abs_max = 1.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    cal.node_range[i] = 1.0f;
    cal.node_abs_range[i] = 1.0f;
  }
  return bswp::Session(compile(g, nullptr, cal, CompileOptions{}));
}

Tensor random_image(Rng& rng, int channels, int hw) {
  Tensor x({1, channels, hw, hw});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

/// One small CIFAR-shaped model shared by the cluster tests.
struct SmallModel {
  bswp::Session session;
  std::vector<Tensor> images;
  std::vector<QTensor> refs;

  explicit SmallModel(int n_images = 24)
      : session(compile_session(models::paper_models()[1] /* ResNet-s */,
                                small_opts(), 11)) {
    Rng rng(99);
    for (int i = 0; i < n_images; ++i) {
      images.push_back(random_image(rng, 3, 16));
      refs.push_back(session.run(images.back()));
    }
  }

  static models::ModelOptions small_opts() {
    models::ModelOptions mo;
    mo.image_size = 16;
    mo.num_classes = 4;
    mo.width = 0.25f;
    return mo;
  }
};

SmallModel& small_model() {
  static SmallModel m;
  return m;
}

FrontDoorOptions quick_options(int shards, std::size_t cache_capacity = 0,
                               HealthPolicy health = HealthPolicy::kFailover) {
  FrontDoorOptions fo;
  fo.shards = shards;
  fo.cache_capacity = cache_capacity;
  fo.health = health;
  fo.server.workers = 1;
  fo.server.batching.max_batch = 4;
  fo.server.batching.max_delay = 300us;
  fo.server.queue.capacity = 256;
  fo.server.queue.policy = QueuePolicy::kBlock;
  return fo;
}

bool same_bits(const QTensor& a, const QTensor& b) {
  return a.shape == b.shape && a.bits == b.bits && a.is_signed == b.is_signed &&
         a.zero_point == b.zero_point && a.scale == b.scale &&
         a.data.size() == b.data.size() &&
         std::memcmp(a.data.data(), b.data.data(),
                     a.data.size() * sizeof(int16_t)) == 0;
}

// --- FrontDoor ---------------------------------------------------------------

TEST(FrontDoor, ValidatesOptions) {
  FrontDoorOptions bad = quick_options(2);
  bad.shards = 0;
  EXPECT_THROW(FrontDoor{bad}, std::invalid_argument);
  bad = quick_options(2);
  bad.vnodes_per_shard = 0;
  EXPECT_THROW(FrontDoor{bad}, std::invalid_argument);
  bad = quick_options(2);
  bad.breaker.unhealthy_after = 0;
  EXPECT_THROW(FrontDoor{bad}, std::invalid_argument);
  bad = quick_options(2);
  bad.breaker.cooldown = -1us;
  EXPECT_THROW(FrontDoor{bad}, std::invalid_argument);
}

TEST(FrontDoor, BitIdenticalAcrossShardsUnderMultiClientStorm) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/2, /*cache_capacity=*/64));
  door.register_model("resnet-s", m.session.network());

  const int kClients = 4;
  const int kPerClient = 24;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<std::size_t, std::future<QTensor>>> futs;
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(c + i * kClients) % m.images.size();
        futs.emplace_back(idx, door.submit("resnet-s", m.images[idx]));
      }
      for (auto& [idx, f] : futs) {
        if (!same_bits(f.get(), m.refs[idx])) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // The storm itself may outrun the cache fill (a repeat submitted before
  // the first result lands is an honest miss), but now that every result is
  // in, a replay must hit without touching a shard.
  EXPECT_TRUE(same_bits(door.submit("resnet-s", m.images[0]).get(), m.refs[0]));

  const ClusterStats s = door.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients * kPerClient + 1));
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.healthy_shards, 2);
  EXPECT_GT(s.cache.hits, 0u);
  // Merged latency window covers every completed request (shards + cache).
  EXPECT_EQ(s.latency.count, s.completed);
  // Dispatch shares cover all routed traffic.
  double share = 0.0;
  std::uint64_t routed = 0;
  for (const ShardStats& ss : s.shard_stats) {
    share += ss.dispatch_share;
    routed += ss.routed;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_EQ(routed + s.cache.hits, s.submitted);
}

TEST(FrontDoor, CacheHitBypassesShardsBitIdentically) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/2, /*cache_capacity=*/8));
  door.register_model("resnet-s", m.session.network());

  const QTensor first = door.submit("resnet-s", m.images[0]).get();
  const std::uint64_t routed_before =
      door.stats().shard_stats[0].routed + door.stats().shard_stats[1].routed;
  const QTensor second = door.submit("resnet-s", m.images[0]).get();
  const ClusterStats s = door.stats();
  EXPECT_TRUE(same_bits(first, m.refs[0]));
  EXPECT_TRUE(same_bits(second, m.refs[0]));
  EXPECT_EQ(s.cache.hits, 1u);
  // The hit never touched a shard.
  EXPECT_EQ(s.shard_stats[0].routed + s.shard_stats[1].routed, routed_before);
}

TEST(FrontDoor, PlacementIsDeterministicAndSpread) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/4));
  door.register_model("resnet-s", m.session.network());
  std::set<int> used;
  for (std::size_t i = 0; i < m.images.size(); ++i) {
    const int s = door.shard_for("resnet-s", m.images[i]);
    EXPECT_EQ(s, door.shard_for("resnet-s", m.images[i]));
    used.insert(s);
  }
  // 24 random images over 4 shards: all shards essentially always see keys.
  EXPECT_GE(used.size(), 2u);
  EXPECT_EQ(door.shard_count(), 4);
  EXPECT_EQ(door.healthy_shard_count(), 4);
}

TEST(FrontDoor, FailoverLosesNoAcceptedRequestWhenShardDiesMidRun) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/4, /*cache_capacity=*/0,
                               HealthPolicy::kFailover));
  door.register_model("resnet-s", m.session.network());

  // Pick a victim that definitely owns traffic in this stream.
  const int victim = door.shard_for("resnet-s", m.images[0]);

  std::vector<std::pair<std::size_t, std::future<QTensor>>> futs;
  const int kTotal = 96;
  for (int i = 0; i < kTotal; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i) % m.images.size();
    futs.emplace_back(idx, door.submit("resnet-s", m.images[idx]));
    if (i == kTotal / 3) door.stop_shard(victim);
  }
  door.drain();
  for (auto& [idx, f] : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);  // drain => ready
    EXPECT_TRUE(same_bits(f.get(), m.refs[idx]));          // no losses
  }
  const ClusterStats s = door.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.healthy_shards, 3);
  EXPECT_EQ(s.shard_stats[static_cast<std::size_t>(victim)].health,
            ShardHealth::kStopped);
  EXPECT_GE(s.ring_rebalances, 1u);
  // The victim's keys were absorbed by the survivors.
  std::uint64_t takeovers = 0;
  for (const ShardStats& ss : s.shard_stats) takeovers += ss.takeovers;
  EXPECT_GT(takeovers, 0u);
}

TEST(FrontDoor, FailFastRefusesOnlyTheDeadOwnersKeys) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/2, /*cache_capacity=*/0,
                               HealthPolicy::kFailFast));
  door.register_model("resnet-s", m.session.network());

  // Find one image owned by each shard.
  int owned_by_dead = -1, owned_by_live = -1;
  const int victim = door.shard_for("resnet-s", m.images[0]);
  for (std::size_t i = 0; i < m.images.size(); ++i) {
    const int s = door.shard_for("resnet-s", m.images[i]);
    if (s == victim) {
      owned_by_dead = static_cast<int>(i);
    } else {
      owned_by_live = static_cast<int>(i);
    }
  }
  ASSERT_GE(owned_by_dead, 0);
  ASSERT_GE(owned_by_live, 0);

  door.stop_shard(victim);

  // The dead owner's keys fail fast with kUnhealthy...
  auto refused =
      door.submit("resnet-s", m.images[static_cast<std::size_t>(owned_by_dead)]);
  try {
    refused.get();
    FAIL() << "expected ServerRejected";
  } catch (const ServerRejected& e) {
    EXPECT_EQ(e.reason(), ServerRejected::Reason::kUnhealthy);
  }
  // ...while the live shard's keys still complete bit-identically.
  EXPECT_TRUE(same_bits(
      door.submit("resnet-s", m.images[static_cast<std::size_t>(owned_by_live)])
          .get(),
      m.refs[static_cast<std::size_t>(owned_by_live)]));
  const ClusterStats s = door.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.failovers, 0u);  // kFailFast never retries
}

TEST(FrontDoor, UnknownModelIsAClientErrorNotAShardFault) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/2));
  door.register_model("resnet-s", m.session.network());
  EXPECT_THROW(door.submit("nope", m.images[0]).get(), std::invalid_argument);
  const ClusterStats s = door.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.healthy_shards, 2);  // no breaker movement
  for (const ShardStats& ss : s.shard_stats) EXPECT_EQ(ss.failures, 0u);
}

TEST(FrontDoor, ShutdownResolvesEverythingAndRejectsNewWork) {
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/2));
  door.register_model("resnet-s", m.session.network());
  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(door.submit(
        "resnet-s", m.images[static_cast<std::size_t>(i) % m.images.size()]));
  }
  door.shutdown();
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_NO_THROW(f.get());
  }
  try {
    door.submit("resnet-s", m.images[0]).get();
    FAIL() << "expected ServerRejected";
  } catch (const ServerRejected& e) {
    EXPECT_EQ(e.reason(), ServerRejected::Reason::kShutdown);
  }
  door.shutdown();  // idempotent
}

TEST(FrontDoor, ConcurrentStormWithStatsPollingAndMidStormShardStop) {
  // The TSan-facing test: clients, a stats() poller and a stop_shard() all
  // race; every accepted future must still resolve bit-identically.
  SmallModel& m = small_model();
  FrontDoor door(quick_options(/*shards=*/3, /*cache_capacity=*/32));
  door.register_model("resnet-s", m.session.network());

  std::atomic<bool> storm_done{false};
  std::thread poller([&] {
    while (!storm_done.load()) {
      const ClusterStats s = door.stats();
      EXPECT_LE(s.completed + s.failed, s.submitted);
      std::this_thread::sleep_for(200us);
    }
  });

  const int kClients = 3;
  const int kPerClient = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<std::size_t, std::future<QTensor>>> futs;
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(c * kPerClient + i) % m.images.size();
        futs.emplace_back(idx, door.submit("resnet-s", m.images[idx]));
        if (c == 0 && i == kPerClient / 2) door.stop_shard(2);
      }
      for (auto& [idx, f] : futs) {
        if (!same_bits(f.get(), m.refs[idx])) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  storm_done.store(true);
  poller.join();

  EXPECT_EQ(mismatches.load(), 0);
  const ClusterStats s = door.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.healthy_shards, 2);
}

}  // namespace
}  // namespace bswp::runtime
