#include "nn/graph.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace bswp::nn {
namespace {

Graph tiny_net() {
  Graph g;
  int x = g.input(2, 8, 8);
  x = g.conv2d(x, 4, 3, 1, 1);
  x = g.batchnorm(x);
  x = g.relu(x);
  x = g.maxpool(x, 2, 2);
  x = g.global_avgpool(x);
  g.linear(x, 3);
  return g;
}

TEST(Graph, ShapeInference) {
  Graph g = tiny_net();
  EXPECT_EQ(g.node(1).out_chw, (std::vector<int>{4, 8, 8}));
  EXPECT_EQ(g.node(4).out_chw, (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(g.node(5).out_chw, (std::vector<int>{4}));
  EXPECT_EQ(g.node(6).out_chw, (std::vector<int>{3}));
}

TEST(Graph, ForwardProducesLogits) {
  Graph g = tiny_net();
  Rng rng(1);
  g.init_weights(rng);
  Tensor x({5, 2, 8, 8});
  rng.fill_normal(x, 1.0f);
  const Tensor& logits = g.forward(x, false);
  EXPECT_EQ(logits.shape(), (std::vector<int>{5, 3}));
}

TEST(Graph, InvalidWiringThrows) {
  Graph g;
  g.input(1, 4, 4);
  EXPECT_THROW(g.conv2d(5, 2, 3, 1, 1), std::invalid_argument);  // missing node
  Graph g2;
  g2.input(3, 4, 4);
  EXPECT_THROW(g2.linear(0, 10), std::invalid_argument);  // linear on spatial
}

TEST(Graph, ResidualAddRequiresMatchingShapes) {
  Graph g;
  int x = g.input(4, 4, 4);
  int a = g.conv2d(x, 4, 3, 1, 1);
  int b = g.conv2d(x, 8, 3, 1, 1);
  EXPECT_THROW(g.add(a, b), std::invalid_argument);
  EXPECT_NO_THROW(g.add(a, x));
}

TEST(Graph, ParamsCoverConvLinearBn) {
  Graph g = tiny_net();
  auto params = g.params();
  // conv weight, bn gamma, bn beta, linear weight, linear bias.
  EXPECT_EQ(params.size(), 5u);
}

TEST(Graph, ParamCount) {
  Graph g = tiny_net();
  // conv: 4*2*9 = 72; bn: 8; linear: 4*3 + 3 = 15.
  EXPECT_EQ(g.param_count(), 72u + 8u + 15u);
}

TEST(Graph, BackwardFillsGradients) {
  Graph g = tiny_net();
  Rng rng(2);
  g.init_weights(rng);
  Tensor x({3, 2, 8, 8});
  rng.fill_normal(x, 1.0f);
  const Tensor& logits = g.forward(x, true);
  Tensor dlogits(logits.shape());
  softmax_cross_entropy(logits, {0, 1, 2}, &dlogits);
  g.zero_grad();
  g.backward(dlogits);
  float wgrad_norm = g.node(1).wgrad.l2_norm();
  EXPECT_GT(wgrad_norm, 0.0f);
}

TEST(Graph, EndToEndGradientCheckThroughResidual) {
  // Numerically check the gradient of the loss w.r.t. one conv weight in a
  // residual topology (exercises Add fan-out accumulation).
  Graph g;
  int x = g.input(4, 4, 4);
  int c1 = g.conv2d(x, 4, 3, 1, 1);
  int r1 = g.relu(c1);
  int c2 = g.conv2d(r1, 4, 3, 1, 1);
  int a = g.add(c2, r1);  // r1 used twice: by conv2 and by add
  int r2 = g.relu(a);
  int gap = g.global_avgpool(r2);
  g.linear(gap, 2);
  Rng rng(3);
  g.init_weights(rng);
  Tensor input({2, 4, 4, 4});
  rng.fill_normal(input, 1.0f);
  const std::vector<int> labels{0, 1};

  auto loss_at = [&]() {
    const Tensor& logits = g.forward(input, true);
    return softmax_cross_entropy(logits, labels, nullptr);
  };

  const Tensor& logits = g.forward(input, true);
  Tensor dlogits(logits.shape());
  softmax_cross_entropy(logits, labels, &dlogits);
  g.zero_grad();
  g.backward(dlogits);

  Tensor& w = g.node(1).weight;
  const Tensor& dw = g.node(1).wgrad;
  const double h = 1e-3;
  for (std::size_t i = 0; i < w.size(); i += 29) {
    const float orig = w[i];
    w[i] = orig + static_cast<float>(h);
    const double lu = loss_at();
    w[i] = orig - static_cast<float>(h);
    const double ld = loss_at();
    w[i] = orig;
    EXPECT_NEAR(dw[i], (lu - ld) / (2 * h), 2e-2) << "weight " << i;
  }
}

TEST(Graph, FakeQuantTracksRangeInTraining) {
  Graph g;
  int x = g.input(1, 2, 2);
  int c = g.conv2d(x, 2, 1, 1, 0);
  int r = g.relu(c);
  g.fake_quant(r, 8);
  Rng rng(4);
  g.init_weights(rng);
  Tensor input({1, 1, 2, 2}, 1.0f);
  EXPECT_EQ(g.node(3).fq_range, 0.0f);
  g.forward(input, true);
  EXPECT_GE(g.node(3).fq_range, 0.0f);
  g.set_fq_range_tracking(false);
  const float frozen = g.node(3).fq_range;
  g.forward(input, true);
  EXPECT_EQ(g.node(3).fq_range, frozen);
}

TEST(Graph, SetActivationBitsAppliesToAllFqNodes) {
  Graph g;
  int x = g.input(1, 2, 2);
  int c = g.conv2d(x, 2, 1, 1, 0);
  int f1 = g.fake_quant(c, 8);
  int c2 = g.conv2d(f1, 2, 1, 1, 0);
  g.fake_quant(c2, 8);
  g.set_activation_bits(4);
  EXPECT_EQ(g.node(2).fq_bits, 4);
  EXPECT_EQ(g.node(4).fq_bits, 4);
}

TEST(Graph, ConvNodeListing) {
  Graph g;
  int x = g.input(8, 4, 4);
  int c1 = g.conv2d(x, 8, 3, 1, 1);
  int d = g.conv2d(c1, 8, 3, 1, 1, /*groups=*/8);
  g.conv2d(d, 4, 1, 1, 0);
  EXPECT_EQ(g.conv_nodes(true).size(), 3u);
  EXPECT_EQ(g.conv_nodes(false).size(), 2u);  // depthwise excluded
}

TEST(Graph, BinarizeForwardAndSTE) {
  Graph g;
  int x = g.input(1, 2, 2);
  g.binarize(x);
  Tensor input({1, 1, 2, 2}, std::vector<float>{-0.5f, 0.2f, -2.0f, 0.0f});
  const Tensor& y = g.forward(input, true);
  EXPECT_EQ(y[0], -1.0f);
  EXPECT_EQ(y[1], 1.0f);
  EXPECT_EQ(y[3], 1.0f);  // sign(0) = +1
  Tensor dout(y.shape(), 1.0f);
  g.backward(dout);
  // STE passes gradient inside |x|<=1 only; can't observe input grad directly
  // (input node), but forward shape/values above cover the op.
}

}  // namespace
}  // namespace bswp::nn
