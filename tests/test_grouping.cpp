#include "pool/grouping.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace bswp::pool {
namespace {

TEST(ZGrouping, ExtractScatterRoundTrip) {
  Rng rng(1);
  Tensor w({4, 16, 3, 3});
  rng.fill_normal(w, 1.0f);
  Tensor vecs = extract_z_vectors(w, 8);
  EXPECT_EQ(vecs.dim(0), 4 * 2 * 3 * 3);
  EXPECT_EQ(vecs.dim(1), 8);
  Tensor w2({4, 16, 3, 3});
  scatter_z_vectors(w2, vecs, 8);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(w2[i], w[i]);
}

TEST(ZGrouping, VectorRunsAlongChannelAxis) {
  // Figure 3: the vector at (o, g, ky, kx) holds w[o, g*G+j, ky, kx].
  Tensor w({1, 8, 2, 2});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  Tensor vecs = extract_z_vectors(w, 8);
  // Vector 0 is (o=0, g=0, ky=0, kx=0): elements w[0, j, 0, 0] = j*4.
  for (int j = 0; j < 8; ++j) EXPECT_EQ(vecs[static_cast<std::size_t>(j)], static_cast<float>(j * 4));
}

TEST(ZGrouping, CanonicalOrderIsOGKyKx) {
  Tensor w({2, 8, 1, 2});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  Tensor vecs = extract_z_vectors(w, 8);
  // Row index layout: ((o * groups + g) * kh + ky) * kw + kx with groups=1.
  // Row 1 is (o=0, kx=1) -> first element w[0,0,0,1] = 1.
  EXPECT_EQ(vecs[1 * 8 + 0], 1.0f);
  // Row 2 is (o=1, kx=0) -> w[1,0,0,0] = 16.
  EXPECT_EQ(vecs[2 * 8 + 0], 16.0f);
}

TEST(ZGrouping, RejectsNonDivisibleChannels) {
  Tensor w({2, 10, 3, 3});
  EXPECT_THROW(extract_z_vectors(w, 8), std::invalid_argument);
}

TEST(ZGroupingLinear, RoundTrip) {
  Rng rng(2);
  Tensor w({5, 24});
  rng.fill_normal(w, 1.0f);
  Tensor vecs = extract_z_vectors_linear(w, 8);
  EXPECT_EQ(vecs.dim(0), 5 * 3);
  Tensor w2({5, 24});
  scatter_z_vectors_linear(w2, vecs, 8);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(w2[i], w[i]);
}

TEST(XyGrouping, RoundTripAndKernelLayout) {
  Rng rng(3);
  Tensor w({3, 2, 3, 3});
  rng.fill_normal(w, 1.0f);
  Tensor kernels = extract_xy_kernels(w);
  EXPECT_EQ(kernels.dim(0), 6);
  EXPECT_EQ(kernels.dim(1), 9);
  // Kernel (o=1, i=0) row equals w[1,0,:,:] flattened.
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(kernels[(1 * 2 + 0) * 9 + k], w.at(1, 0, k / 3, k % 3));
  }
  Tensor w2({3, 2, 3, 3});
  scatter_xy_kernels(w2, kernels);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(w2[i], w[i]);
}

TEST(ZPoolable, Rules) {
  EXPECT_TRUE(z_poolable(nn::ConvSpec{16, 32, 3, 3, 1, 1, 1}, 8));
  EXPECT_FALSE(z_poolable(nn::ConvSpec{3, 32, 3, 3, 1, 1, 1}, 8));    // shallow first layer
  EXPECT_FALSE(z_poolable(nn::ConvSpec{12, 32, 3, 3, 1, 1, 1}, 8));   // not divisible
  EXPECT_FALSE(z_poolable(nn::ConvSpec{16, 16, 3, 3, 1, 1, 16}, 8));  // depthwise
  EXPECT_TRUE(z_poolable(nn::ConvSpec{8, 8, 1, 1, 1, 0, 1}, 8));      // 1x1 fits (paper §3)
}

TEST(ChannelGroups, Count) {
  EXPECT_EQ(num_channel_groups(32, 8), 4);
  EXPECT_EQ(num_channel_groups(8, 8), 1);
  EXPECT_THROW(num_channel_groups(8, 0), std::invalid_argument);
}

class GroupSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizeSweep, RoundTripForAllGroupSizes) {
  const int G = GetParam();
  Rng rng(4);
  Tensor w({2, 16, 3, 3});
  rng.fill_normal(w, 1.0f);
  Tensor vecs = extract_z_vectors(w, G);
  EXPECT_EQ(vecs.dim(0), 2 * (16 / G) * 9);
  Tensor w2({2, 16, 3, 3});
  scatter_z_vectors(w2, vecs, G);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(w2[i], w[i]);
}

INSTANTIATE_TEST_SUITE_P(Table1GroupSizes, GroupSizeSweep, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace bswp::pool
