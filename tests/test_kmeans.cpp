#include "pool/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.h"

namespace bswp::pool {
namespace {

/// Three well-separated gaussian blobs in `dim` dimensions.
Tensor blobs(int per_cluster, int dim, Rng& rng) {
  Tensor data({3 * per_cluster, dim});
  const float centers[3] = {-5.0f, 0.0f, 5.0f};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      for (int d = 0; d < dim; ++d) {
        data[(static_cast<std::size_t>(c) * per_cluster + i) * dim + d] =
            centers[c] + static_cast<float>(rng.normal(0.0, 0.2));
      }
    }
  }
  return data;
}

TEST(KMeans, RecoversSeparatedClusters) {
  Rng rng(1);
  Tensor data = blobs(50, 4, rng);
  KMeansOptions opt;
  opt.clusters = 3;
  opt.metric = Metric::kEuclidean;
  KMeansResult res = kmeans(data, opt);
  // Each blob maps to a single cluster id.
  for (int c = 0; c < 3; ++c) {
    std::set<int> ids;
    for (int i = 0; i < 50; ++i) ids.insert(res.assignment[static_cast<std::size_t>(c) * 50 + i]);
    EXPECT_EQ(ids.size(), 1u) << "blob " << c;
  }
  // All three distinct.
  std::set<int> reps{res.assignment[0], res.assignment[50], res.assignment[100]};
  EXPECT_EQ(reps.size(), 3u);
}

TEST(KMeans, InertiaNonIncreasingWithMoreClusters) {
  Rng rng(2);
  Tensor data({200, 8});
  rng.fill_normal(data, 1.0f);
  double prev = 1e300;
  for (int k : {2, 4, 8, 16}) {
    KMeansOptions opt;
    opt.clusters = k;
    opt.metric = Metric::kEuclidean;
    opt.seed = 3;
    const double inertia = kmeans(data, opt).inertia;
    EXPECT_LE(inertia, prev * 1.05);  // small tolerance for local minima
    prev = inertia;
  }
}

TEST(KMeans, DeterministicForSeed) {
  Rng rng(4);
  Tensor data({100, 6});
  rng.fill_normal(data, 1.0f);
  KMeansOptions opt;
  opt.clusters = 8;
  KMeansResult a = kmeans(data, opt);
  KMeansResult b = kmeans(data, opt);
  EXPECT_EQ(a.assignment, b.assignment);
  for (std::size_t i = 0; i < a.centroids.size(); ++i) EXPECT_EQ(a.centroids[i], b.centroids[i]);
}

TEST(KMeans, ClustersCappedAtPointCount) {
  Tensor data({3, 2}, std::vector<float>{0, 0, 1, 1, 2, 2});
  KMeansOptions opt;
  opt.clusters = 10;
  KMeansResult res = kmeans(data, opt);
  EXPECT_EQ(res.centroids.dim(0), 3);
}

TEST(CosineDistance, ScaleInvariant) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {2.0f, 4.0f, 6.0f};  // same direction, 2x magnitude
  EXPECT_NEAR(distance(a, b, 3, Metric::kCosine), 0.0, 1e-6);
  const float c[] = {-1.0f, -2.0f, -3.0f};
  EXPECT_NEAR(distance(a, c, 3, Metric::kCosine), 2.0, 1e-6);  // opposite
}

TEST(CosineDistance, ZeroVectorIsFarFromEverything) {
  const float z[] = {0.0f, 0.0f};
  const float a[] = {1.0f, 0.0f};
  EXPECT_EQ(distance(z, a, 2, Metric::kCosine), 1.0);
}

TEST(EuclideanDistance, MatchesHandComputation) {
  const float a[] = {1.0f, 2.0f};
  const float b[] = {4.0f, 6.0f};
  EXPECT_NEAR(distance(a, b, 2, Metric::kEuclidean), 25.0, 1e-6);
}

TEST(KMeansCosine, GroupsByDirectionNotMagnitude) {
  // Two directions, each at wildly different magnitudes. Cosine clustering
  // must split by direction ("to avoid scaling dependence", paper §3).
  Tensor data({40, 3});
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const bool dir_a = i < 20;
    const float mag = static_cast<float>(rng.uniform(0.1, 10.0));
    const float base[3] = {dir_a ? 1.0f : -1.0f, 0.5f, dir_a ? 0.2f : 0.9f};
    for (int d = 0; d < 3; ++d) {
      data[static_cast<std::size_t>(i) * 3 + d] =
          mag * base[d] + static_cast<float>(rng.normal(0.0, 0.02));
    }
  }
  KMeansOptions opt;
  opt.clusters = 2;
  opt.metric = Metric::kCosine;
  KMeansResult res = kmeans(data, opt);
  std::set<int> first(res.assignment.begin(), res.assignment.begin() + 20);
  std::set<int> second(res.assignment.begin() + 20, res.assignment.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(NearestCentroid, PicksClosest) {
  Tensor cen({2, 2}, std::vector<float>{0, 0, 10, 10});
  const float p[] = {1.0f, 1.0f};
  EXPECT_EQ(nearest_centroid(p, cen, Metric::kEuclidean), 0);
  const float q[] = {9.0f, 9.0f};
  EXPECT_EQ(nearest_centroid(q, cen, Metric::kEuclidean), 1);
}

TEST(KMeans, HandlesDuplicatePoints) {
  Tensor data({10, 2}, 1.0f);  // all identical
  KMeansOptions opt;
  opt.clusters = 3;
  KMeansResult res = kmeans(data, opt);
  EXPECT_EQ(res.centroids.dim(0), 3);
  // All points assigned somewhere valid.
  for (int a : res.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

}  // namespace
}  // namespace bswp::pool
