// The SelectBackends cost model must never drift from the kernels it prices:
// for every variant and a battery of geometries (padding, stride, 1x1 and 5x5
// kernels, repeated pool indices), the closed-form estimate in sim/layer_cost
// must equal the CostCounter the real kernel produces — event for event.
#include "sim/layer_cost.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "kernels/bitserial_conv.h"
#include "kernels/baseline_conv.h"

namespace bswp::sim {
namespace {

using kernels::BitSerialVariant;

constexpr BitSerialVariant kAllVariants[] = {
    BitSerialVariant::kNaive, BitSerialVariant::kInputReuse, BitSerialVariant::kCached,
    BitSerialVariant::kCachedPrecompute, BitSerialVariant::kCachedMemoize};

void expect_same_counts(const CostCounter& want, const CostCounter& got, const std::string& ctx) {
  for (int e = 0; e < kNumEvents; ++e) {
    EXPECT_EQ(want.count(static_cast<Event>(e)), got.count(static_cast<Event>(e)))
        << ctx << " diverges on event " << event_name(static_cast<Event>(e));
  }
}

struct Fixture {
  pool::DotLut lut;
  kernels::PackedIndices indices;
  kernels::Requant rq;

  Fixture(int pool_size, const nn::ConvSpec& spec, uint64_t seed) {
    Rng rng(seed);
    pool::WeightPool wp;
    wp.group_size = 8;
    wp.vectors = Tensor({pool_size, 8});
    rng.fill_normal(wp.vectors, 0.3f);
    lut = pool::build_lut(wp, pool::LutOptions{});
    pool::PooledLayer pl;
    pl.out_ch = spec.out_ch;
    pl.channel_groups = spec.in_ch / 8;
    pl.kh = spec.kh;
    pl.kw = spec.kw;
    pl.indices.resize(static_cast<std::size_t>(pl.out_ch) * pl.channel_groups * pl.kh * pl.kw);
    // Skewed draw so slices contain plenty of repeats (exercises memoization).
    for (auto& idx : pl.indices) {
      idx = static_cast<uint16_t>(rng.uniform_int(static_cast<uint32_t>(pool_size)) / 3);
    }
    indices = kernels::PackedIndices::pack(pl);
    rq = kernels::Requant::uniform(spec.out_ch, 1e-4f, {}, 0.01f, 8, false, true);
  }
};

QTensor random_acts(std::vector<int> shape, int bits, uint64_t seed) {
  Rng rng(seed);
  QTensor t(std::move(shape), bits, false);
  t.scale = 0.05f;
  for (auto& v : t.data) v = static_cast<int16_t>(rng.uniform_int(1u << bits));
  return t;
}

TEST(LayerCost, BitSerialConvMatchesKernelCounters) {
  const nn::ConvSpec specs[] = {
      {16, 24, 3, 3, 1, 1, 1},  // padded 3x3
      {8, 16, 1, 1, 1, 0, 1},   // pointwise
      {16, 12, 5, 5, 2, 2, 1},  // strided 5x5 with wide padding
      {24, 8, 3, 3, 1, 0, 1},   // valid-only 3x3
  };
  for (const auto& spec : specs) {
    for (int pool_size : {16, 64}) {
      Fixture f(pool_size, spec, 11);
      for (int bits : {1, 4, 8}) {
        QTensor in = random_acts({1, spec.in_ch, 9, 9}, bits, 77);
        for (BitSerialVariant v : kAllVariants) {
          CostCounter measured;
          kernels::bitserial_conv2d(in, f.indices, f.lut, spec, f.rq, v, &measured);
          const CostCounter predicted =
              bitserial_conv_cost(spec, 9, 9, bits, f.lut, f.indices, v);
          expect_same_counts(measured, predicted,
                             std::string("conv ") + kernels::variant_name(v) + " S=" +
                                 std::to_string(pool_size) + " M=" + std::to_string(bits) +
                                 " k=" + std::to_string(spec.kh) + " pad=" +
                                 std::to_string(spec.pad));
        }
      }
    }
  }
}

TEST(LayerCost, BitSerialLinearMatchesKernelCounters) {
  for (int fin : {16, 64}) {
    for (int fout : {10, 40}) {
      nn::ConvSpec spec{fin, fout, 1, 1, 1, 0, 1};
      Fixture f(32, spec, 23);
      for (int bits : {2, 8}) {
        QTensor in = random_acts({1, fin}, bits, 99);
        for (BitSerialVariant v : kAllVariants) {
          CostCounter measured;
          kernels::bitserial_linear(in, f.indices, f.lut, f.rq, v, &measured);
          const CostCounter predicted = bitserial_linear_cost(fin, bits, f.lut, f.indices, v);
          expect_same_counts(measured, predicted,
                             std::string("linear ") + kernels::variant_name(v) + " fin=" +
                                 std::to_string(fin) + " fout=" + std::to_string(fout));
        }
      }
    }
  }
}

TEST(LayerCost, BaselineConvMatchesKernelCounters) {
  const nn::ConvSpec specs[] = {
      {16, 24, 3, 3, 1, 1, 1},
      {12, 12, 3, 3, 1, 1, 12},  // depthwise
      {8, 16, 5, 5, 2, 0, 1},
  };
  Rng rng(5);
  for (const auto& spec : specs) {
    QTensor in = random_acts({1, spec.in_ch, 10, 10}, 8, 31);
    QTensor w(spec.weight_shape(), 8, true);
    for (auto& v : w.data) v = static_cast<int16_t>(-10 + static_cast<int>(rng.uniform_int(21)));
    kernels::Requant rq = kernels::Requant::uniform(spec.out_ch, 1e-4f, {}, 0.01f, 8, false, true);
    CostCounter measured;
    kernels::baseline_conv2d(in, w, spec, rq, &measured);
    expect_same_counts(measured, baseline_conv_cost(spec, 10, 10),
                       "baseline conv groups=" + std::to_string(spec.groups));
  }
}

TEST(LayerCost, BaselineLinearMatchesKernelCounters) {
  Rng rng(6);
  const int fin = 48, fout = 12;
  QTensor in = random_acts({1, fin}, 8, 41);
  QTensor w({fout, fin}, 8, true);
  for (auto& v : w.data) v = static_cast<int16_t>(-10 + static_cast<int>(rng.uniform_int(21)));
  kernels::Requant rq = kernels::Requant::uniform(fout, 1e-4f, {}, 0.01f, 16, true, false);
  CostCounter measured;
  kernels::baseline_linear(in, w, rq, &measured);
  expect_same_counts(measured, baseline_linear_cost(fin, fout), "baseline linear");
}

}  // namespace
}  // namespace bswp::sim
