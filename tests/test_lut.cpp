#include "pool/lut.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace bswp::pool {
namespace {

WeightPool random_pool(int size, int group, uint64_t seed) {
  WeightPool p;
  p.group_size = group;
  p.vectors = Tensor({size, group});
  Rng rng(seed);
  rng.fill_normal(p.vectors, 0.3f);
  return p;
}

TEST(Lut, SizeMatchesEq3) {
  WeightPool p = random_pool(64, 8, 1);
  LutOptions opt;
  DotLut lut = build_lut(p, opt);
  EXPECT_EQ(lut.entries.size(), static_cast<std::size_t>(256) * 64);
  EXPECT_EQ(lut.storage_bytes(), static_cast<std::size_t>(256) * 64 * 8 / 8);  // Eq. 3
  EXPECT_EQ(lut.block_bytes(), 64u);
}

TEST(Lut, WideBitwidthEntriesAreExactBitDots) {
  WeightPool p = random_pool(16, 8, 2);
  LutOptions opt;
  opt.bitwidth = 16;  // raw range (<= 8*127) always fits in 16 bits
  DotLut lut = build_lut(p, opt);
  EXPECT_EQ(lut.entry_scale, 1.0f);
  QTensor qpool = quantize_pool(p, 8);
  for (uint32_t b : {0u, 1u, 37u, 255u}) {
    for (int s = 0; s < 16; ++s) {
      EXPECT_EQ(lut.at(b, s), reference_bit_dot(qpool, b, s));
    }
  }
}

TEST(Lut, ZeroBitVectorIsZero) {
  WeightPool p = random_pool(8, 8, 3);
  DotLut lut = build_lut(p, LutOptions{});
  for (int s = 0; s < 8; ++s) EXPECT_EQ(lut.at(0, s), 0);
}

TEST(Lut, AllOnesBitVectorIsRowSum) {
  WeightPool p = random_pool(8, 8, 4);
  LutOptions opt;
  opt.bitwidth = 16;
  DotLut lut = build_lut(p, opt);
  QTensor qpool = quantize_pool(p, 8);
  for (int s = 0; s < 8; ++s) {
    int32_t sum = 0;
    for (int j = 0; j < 8; ++j) sum += qpool.data[static_cast<std::size_t>(s) * 8 + j];
    EXPECT_EQ(lut.at(255, s), sum);
  }
}

TEST(Lut, AdditivityOverDisjointBitVectors) {
  // dot(b1 | b2) == dot(b1) + dot(b2) when b1 & b2 == 0 (exact entries).
  WeightPool p = random_pool(8, 8, 5);
  LutOptions opt;
  opt.bitwidth = 16;
  DotLut lut = build_lut(p, opt);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(lut.at(0b10100101, s), lut.at(0b10100000, s) + lut.at(0b00000101, s));
  }
}

TEST(Lut, LayoutsHoldSameValues) {
  WeightPool p = random_pool(32, 8, 6);
  LutOptions in_opt, w_opt;
  in_opt.order = LutOrder::kInputOriented;
  w_opt.order = LutOrder::kWeightOriented;
  DotLut a = build_lut(p, in_opt);
  DotLut b = build_lut(p, w_opt);
  for (uint32_t bits : {3u, 129u, 200u}) {
    for (int s = 0; s < 32; ++s) EXPECT_EQ(a.at(bits, s), b.at(bits, s));
  }
  // Input-oriented: one block = all pool entries for one bit-vector,
  // contiguous (this is what makes §4.2 caching work).
  EXPECT_EQ(a.flat_index(5, 0) + 1, a.flat_index(5, 1));
  EXPECT_EQ(b.flat_index(5, 0) + 1, b.flat_index(6, 0));
}

TEST(Lut, NarrowBitwidthQuantizesWithBoundedError) {
  WeightPool p = random_pool(64, 8, 7);
  LutOptions wide_opt, narrow_opt;
  wide_opt.bitwidth = 16;
  narrow_opt.bitwidth = 4;
  DotLut wide = build_lut(p, wide_opt);
  DotLut narrow = build_lut(p, narrow_opt);
  EXPECT_GT(narrow.entry_scale, 1.0f);
  for (uint32_t bits = 0; bits < 256; bits += 17) {
    for (int s = 0; s < 64; ++s) {
      const float approx = static_cast<float>(narrow.at(bits, s)) * narrow.entry_scale;
      const float exact = static_cast<float>(wide.at(bits, s));
      EXPECT_NEAR(approx, exact, narrow.entry_scale);  // within one step
      EXPECT_LE(std::abs(narrow.at(bits, s)), 7);      // 4-bit range
    }
  }
}

class LutBitwidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LutBitwidthSweep, EntriesWithinBitwidthRange) {
  const int bl = GetParam();
  WeightPool p = random_pool(32, 8, 8);
  LutOptions opt;
  opt.bitwidth = bl;
  DotLut lut = build_lut(p, opt);
  // 64-bit arithmetic: bl = 32 would overflow (UB) in int32.
  const int64_t qmax = (int64_t{1} << (bl - 1)) - 1;
  for (int32_t e : lut.entries) {
    EXPECT_LE(e, qmax);
    EXPECT_GE(e, -qmax - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Table5Bitwidths, LutBitwidthSweep, ::testing::Values(4, 8, 16, 32));

TEST(Lut, SmallerGroupSizeSmallerTable) {
  WeightPool p4 = random_pool(64, 4, 9);
  DotLut lut4 = build_lut(p4, LutOptions{});
  EXPECT_EQ(lut4.entries.size(), static_cast<std::size_t>(16) * 64);
  EXPECT_EQ(lut4.num_bit_vectors(), 16);
}

TEST(Lut, PoolScaleMatchesSymmetricQuant) {
  WeightPool p = random_pool(16, 8, 10);
  DotLut lut = build_lut(p, LutOptions{});
  EXPECT_NEAR(lut.pool_scale, p.vectors.abs_max() / 127.0f, 1e-6);
}

}  // namespace
}  // namespace bswp::pool
