#include "models/zoo.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "pool/grouping.h"

namespace bswp::models {
namespace {

std::size_t weight_params(const nn::Graph& g) {
  std::size_t total = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    const nn::Node& n = g.node(i);
    if (n.op == nn::Op::kConv2d || n.op == nn::Op::kLinear) {
      total += n.weight.size() + n.bias.size();
    }
  }
  return total;
}

TEST(Zoo, ParamCountsNearPaperTable3) {
  // Table 3: TinyConv 81.6k, ResNet-s 171k, ResNet-10 665k, ResNet-14 2.73M,
  // MobileNet-v2 2.25M. Architectures are reconstructed from the paper's
  // descriptions, so counts should land within ~15%.
  ModelOptions cifar;
  ModelOptions qd;
  qd.in_channels = 1;
  qd.image_size = 28;
  qd.num_classes = 100;

  EXPECT_NEAR(static_cast<double>(weight_params(build_resnet_s(cifar))), 171000.0, 0.15 * 171000);
  EXPECT_NEAR(static_cast<double>(weight_params(build_resnet10(cifar))), 665000.0, 0.15 * 665000);
  EXPECT_NEAR(static_cast<double>(weight_params(build_resnet14(cifar))), 2730000.0,
              0.15 * 2730000);
  EXPECT_NEAR(static_cast<double>(weight_params(build_tinyconv(qd))), 81600.0, 0.25 * 81600);
  EXPECT_NEAR(static_cast<double>(weight_params(build_mobilenet_v2(qd))), 2250000.0,
              0.25 * 2250000);
}

TEST(Zoo, ForwardShapes) {
  ModelOptions opt;
  opt.width = 0.25f;
  for (const NamedModel& m : paper_models()) {
    ModelOptions o = opt;
    if (!m.on_cifar) {
      o.in_channels = 1;
      o.image_size = 28;
      o.num_classes = 20;
    }
    nn::Graph g = m.build(o);
    Rng rng(1);
    g.init_weights(rng);
    Tensor x({2, o.in_channels, o.image_size, o.image_size});
    rng.fill_normal(x, 1.0f);
    const Tensor& logits = g.forward(x, false);
    EXPECT_EQ(logits.shape(), (std::vector<int>{2, o.num_classes})) << m.name;
  }
}

TEST(Zoo, FirstConvNeverPoolable) {
  ModelOptions opt;
  for (const NamedModel& m : paper_models()) {
    ModelOptions o = opt;
    if (!m.on_cifar) o.in_channels = 1;
    nn::Graph g = m.build(o);
    const auto convs = g.conv_nodes(true);
    ASSERT_FALSE(convs.empty());
    EXPECT_FALSE(pool::z_poolable(g.node(convs[0]).conv, 8)) << m.name;
  }
}

TEST(Zoo, MobileNetDepthwiseLayersNotPoolable) {
  ModelOptions opt;
  nn::Graph g = build_mobilenet_v2(opt);
  int depthwise = 0, pointwise_poolable = 0;
  for (int node : g.conv_nodes(true)) {
    const nn::ConvSpec& s = g.node(node).conv;
    if (s.groups > 1) {
      ++depthwise;
      EXPECT_FALSE(pool::z_poolable(s, 8));
    } else if (s.kh == 1 && pool::z_poolable(s, 8)) {
      ++pointwise_poolable;
    }
  }
  EXPECT_GT(depthwise, 10);
  EXPECT_GT(pointwise_poolable, 20);
}

TEST(Zoo, DepthwiseStorageShareIsSmall) {
  // Paper §5.1: depthwise layers are ~2.93% of MobileNet-v2 storage.
  ModelOptions opt;
  nn::Graph g = build_mobilenet_v2(opt);
  std::size_t dw = 0, total = 0;
  for (int node : g.conv_nodes(true)) {
    const nn::Node& n = g.node(node);
    total += n.weight.size();
    if (n.conv.groups > 1) dw += n.weight.size();
  }
  const double share = static_cast<double>(dw) / static_cast<double>(total);
  EXPECT_LT(share, 0.05);
  EXPECT_GT(share, 0.005);
}

TEST(Zoo, WidthScalingShrinksParams) {
  ModelOptions full, quarter;
  quarter.width = 0.25f;
  EXPECT_LT(weight_params(build_resnet10(quarter)), weight_params(build_resnet10(full)) / 8);
}

TEST(Zoo, ScaledChannelsStayPoolable) {
  // Width-scaled variants must keep every non-first conv divisible by 8.
  ModelOptions opt;
  opt.width = 0.25f;
  nn::Graph g = build_resnet14(opt);
  const auto convs = g.conv_nodes(true);
  for (std::size_t i = 1; i < convs.size(); ++i) {
    EXPECT_EQ(g.node(convs[i]).conv.in_ch % 8, 0);
  }
}

TEST(Zoo, FakeQuantInsertion) {
  ModelOptions opt;
  opt.fake_quant = true;
  opt.width = 0.25f;
  nn::Graph g = build_resnet_s(opt);
  int fq = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).op == nn::Op::kFakeQuant) ++fq;
  }
  EXPECT_GT(fq, 5);
}

TEST(Zoo, ScaleChannelsRounding) {
  EXPECT_EQ(scale_channels(64, 1.0f), 64);
  EXPECT_EQ(scale_channels(64, 0.25f), 16);
  EXPECT_EQ(scale_channels(10, 0.25f), 8);   // floor at multiple
  EXPECT_EQ(scale_channels(20, 0.5f), 16);   // rounded up to multiple of 8
}

TEST(Zoo, BinarizedTinyConvHasBinarizeNodes) {
  ModelOptions opt;
  opt.width = 0.5f;
  nn::Graph g = build_binarized_tinyconv(opt);
  int bin = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).op == nn::Op::kBinarize) ++bin;
  }
  EXPECT_EQ(bin, 2);
}

}  // namespace
}  // namespace bswp::models
