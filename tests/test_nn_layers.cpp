#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/rng.h"

namespace bswp::nn {
namespace {

// Finite-difference gradient checking: compares analytic dL/dx against
// (L(x+h) - L(x-h)) / 2h for a scalar loss L = sum(w_out * f(x)).
using ForwardFn = std::function<Tensor(const Tensor&)>;

double numeric_grad(const ForwardFn& f, Tensor x, std::size_t i, const Tensor& w_out) {
  const double h = 1e-3;
  const float orig = x[i];
  x[i] = orig + static_cast<float>(h);
  Tensor up = f(x);
  x[i] = orig - static_cast<float>(h);
  Tensor dn = f(x);
  x[i] = orig;
  double lu = 0, ld = 0;
  for (std::size_t j = 0; j < up.size(); ++j) {
    lu += static_cast<double>(w_out[j]) * up[j];
    ld += static_cast<double>(w_out[j]) * dn[j];
  }
  return (lu - ld) / (2 * h);
}

TEST(Matmul, MatchesManual) {
  // 2x3 * 3x2
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {7, 8, 9, 10, 11, 12};
  float c[4];
  matmul(a, b, c, 2, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 58);
  EXPECT_FLOAT_EQ(c[1], 64);
  EXPECT_FLOAT_EQ(c[2], 139);
  EXPECT_FLOAT_EQ(c[3], 154);
}

TEST(Matmul, TransposedVariantsConsistent) {
  Rng rng(5);
  const int m = 4, k = 5, n = 3;
  Tensor A({m, k}), B({k, n}), Bt({n, k});
  rng.fill_normal(A, 1.0f);
  rng.fill_normal(B, 1.0f);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) Bt.at(j, i) = B.at(i, j);
  Tensor C1({m, n}), C2({m, n});
  matmul(A.data(), B.data(), C1.data(), m, k, n);
  matmul_a_bt(A.data(), Bt.data(), C2.data(), m, k, n);
  for (std::size_t i = 0; i < C1.size(); ++i) EXPECT_NEAR(C1[i], C2[i], 1e-5);
}

TEST(Im2Col, IdentityKernelReproducesInput) {
  const int c = 2, h = 3, w = 3;
  ConvSpec spec{c, 1, 1, 1, 1, 0, 1};
  Tensor img({c, h, w});
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(static_cast<std::size_t>(c) * h * w);
  im2col(img.data(), c, h, w, spec, cols.data());
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2Col, PaddingWritesZeros) {
  const int c = 1, h = 2, w = 2;
  ConvSpec spec{c, 1, 3, 3, 1, 1, 1};
  Tensor img({c, h, w}, 1.0f);
  std::vector<float> cols(static_cast<std::size_t>(9) * 4);
  im2col(img.data(), c, h, w, spec, cols.data());
  // Top-left kernel tap of the top-left output hits padding.
  EXPECT_EQ(cols[0], 0.0f);
}

TEST(Conv2d, MatchesDirectComputation) {
  Rng rng(2);
  ConvSpec spec{3, 4, 3, 3, 1, 1, 1};
  Tensor x({2, 3, 5, 5}), w(spec.weight_shape()), b({4});
  rng.fill_normal(x, 1.0f);
  rng.fill_normal(w, 0.5f);
  rng.fill_normal(b, 0.5f);
  Tensor y = conv2d_forward(x, w, &b, spec);
  ASSERT_EQ(y.shape(), (std::vector<int>{2, 4, 5, 5}));
  // Check one output element directly.
  const int n = 1, oc = 2, oy = 2, ox = 3;
  double acc = b[2];
  for (int c = 0; c < 3; ++c)
    for (int ky = 0; ky < 3; ++ky)
      for (int kx = 0; kx < 3; ++kx) {
        const int iy = oy + ky - 1, ix = ox + kx - 1;
        if (iy < 0 || iy >= 5 || ix < 0 || ix >= 5) continue;
        acc += static_cast<double>(x.at(n, c, iy, ix)) * w.at(oc, c, ky, kx);
      }
  EXPECT_NEAR(y.at(n, oc, oy, ox), acc, 1e-4);
}

TEST(Conv2d, StrideAndNoPadding) {
  ConvSpec spec{1, 1, 2, 2, 2, 0, 1};
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor w(spec.weight_shape(), 1.0f);
  Tensor y = conv2d_forward(x, w, nullptr, spec);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0 + 1 + 4 + 5);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 10 + 11 + 14 + 15);
}

TEST(Conv2d, DepthwiseGroups) {
  Rng rng(3);
  ConvSpec spec{4, 4, 3, 3, 1, 1, 4};
  Tensor x({1, 4, 4, 4}), w(spec.weight_shape());
  rng.fill_normal(x, 1.0f);
  rng.fill_normal(w, 1.0f);
  Tensor y = conv2d_forward(x, w, nullptr, spec);
  // Each output channel depends only on the matching input channel: zeroing
  // channel 1 of the input must change only output channel 1.
  Tensor x2 = x;
  for (int i = 0; i < 16; ++i) x2[static_cast<std::size_t>(16) + i] = 0.0f;
  Tensor y2 = conv2d_forward(x2, w, nullptr, spec);
  for (int c = 0; c < 4; ++c) {
    bool changed = false;
    for (int i = 0; i < 16; ++i) {
      if (y.at(0, c, i / 4, i % 4) != y2.at(0, c, i / 4, i % 4)) changed = true;
    }
    EXPECT_EQ(changed, c == 1);
  }
}

TEST(Conv2d, GradientCheckInputAndWeights) {
  Rng rng(7);
  ConvSpec spec{2, 3, 3, 3, 1, 1, 1};
  Tensor x({1, 2, 4, 4}), w(spec.weight_shape()), b({3});
  rng.fill_normal(x, 1.0f);
  rng.fill_normal(w, 0.5f);
  rng.fill_normal(b, 0.5f);
  Tensor y = conv2d_forward(x, w, &b, spec);
  Tensor w_out(y.shape());
  rng.fill_normal(w_out, 1.0f);

  Tensor dx(x.shape()), dw(w.shape()), db(b.shape());
  conv2d_backward(x, w, spec, w_out, &dx, &dw, &db);

  auto fx = [&](const Tensor& xx) { return conv2d_forward(xx, w, &b, spec); };
  for (std::size_t i = 0; i < x.size(); i += 7) {
    EXPECT_NEAR(dx[i], numeric_grad(fx, x, i, w_out), 2e-2) << "dx at " << i;
  }
  auto fw = [&](const Tensor& ww) { return conv2d_forward(x, ww, &b, spec); };
  for (std::size_t i = 0; i < w.size(); i += 5) {
    EXPECT_NEAR(dw[i], numeric_grad(fw, w, i, w_out), 2e-2) << "dw at " << i;
  }
}

TEST(Linear, ForwardAndGradient) {
  Rng rng(9);
  Tensor x({3, 5}), w({4, 5}), b({4});
  rng.fill_normal(x, 1.0f);
  rng.fill_normal(w, 0.5f);
  rng.fill_normal(b, 0.5f);
  Tensor y = linear_forward(x, w, &b);
  ASSERT_EQ(y.shape(), (std::vector<int>{3, 4}));
  double acc = b[1];
  for (int i = 0; i < 5; ++i) acc += static_cast<double>(x.at(2, i)) * w.at(1, i);
  EXPECT_NEAR(y.at(2, 1), acc, 1e-5);

  Tensor w_out(y.shape());
  rng.fill_normal(w_out, 1.0f);
  Tensor dx(x.shape()), dw(w.shape()), db(b.shape());
  linear_backward(x, w, w_out, &dx, &dw, &db);
  auto fx = [&](const Tensor& xx) { return linear_forward(xx, w, &b); };
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(dx[i], numeric_grad(fx, x, i, w_out), 1e-2);
  }
  auto fw = [&](const Tensor& ww) { return linear_forward(x, ww, &b); };
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(dw[i], numeric_grad(fw, w, i, w_out), 1e-2);
  }
}

TEST(ReLU, ForwardBackward) {
  Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y = relu_forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor dout({4}, 1.0f), dx({4});
  relu_backward(x, dout, &dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[2], 1.0f);
}

TEST(MaxPool, ForwardSelectsMaxAndRoutesGradient) {
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y = maxpool_forward(x, 2, 2);
  EXPECT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(y.at(0, 0, 1, 1), 15.0f);
  Tensor dout(y.shape(), 1.0f), dx(x.shape());
  maxpool_backward(x, 2, 2, dout, &dx);
  EXPECT_EQ(dx.at(0, 0, 1, 1), 1.0f);  // position of 5
  EXPECT_EQ(dx.at(0, 0, 0, 0), 0.0f);
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Tensor y = global_avgpool_forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.5f);
  Tensor dout({1, 2}, 4.0f), dx(x.shape());
  global_avgpool_backward(x, dout, &dx);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
}

TEST(BatchNorm, NormalizesInTraining) {
  Rng rng(4);
  Tensor x({4, 3, 5, 5});
  rng.fill_normal(x, 2.0f);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += 3.0f;
  BatchNormState bn(3);
  Tensor y = batchnorm_forward(x, bn, /*training=*/true);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 3; ++c) {
    double s = 0, s2 = 0;
    int cnt = 0;
    for (int n = 0; n < 4; ++n)
      for (int i = 0; i < 25; ++i) {
        const float v = y.at(n, c, i / 5, i % 5);
        s += v;
        s2 += static_cast<double>(v) * v;
        ++cnt;
      }
    EXPECT_NEAR(s / cnt, 0.0, 1e-4);
    EXPECT_NEAR(s2 / cnt, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Tensor x({2, 1, 2, 2}, 5.0f);
  BatchNormState bn(1);
  bn.running_mean[0] = 5.0f;
  bn.running_var[0] = 4.0f;
  Tensor y = batchnorm_forward(x, bn, /*training=*/false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 0.0f, 1e-5);
}

TEST(BatchNorm, GradientCheck) {
  Rng rng(6);
  Tensor x({2, 2, 3, 3});
  rng.fill_normal(x, 1.0f);
  BatchNormState bn(2);
  bn.gamma[0] = 1.5f;
  bn.beta[1] = 0.3f;
  Tensor y = batchnorm_forward(x, bn, true);
  Tensor w_out(y.shape());
  rng.fill_normal(w_out, 1.0f);
  Tensor dx(x.shape()), dg({2}), db({2});
  batchnorm_backward(x, bn, w_out, &dx, &dg, &db);
  auto f = [&](const Tensor& xx) {
    BatchNormState bn2(2);
    bn2.gamma = bn.gamma;
    bn2.beta = bn.beta;
    return batchnorm_forward(xx, bn2, true);
  };
  for (std::size_t i = 0; i < x.size(); i += 3) {
    EXPECT_NEAR(dx[i], numeric_grad(f, x, i, w_out), 5e-2) << i;
  }
}

TEST(SoftmaxCrossEntropy, LossAndGradient) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, 0, 0, 0});
  std::vector<int> labels{2, 0};
  Tensor dl({2, 3});
  const float loss = softmax_cross_entropy(logits, labels, &dl);
  // Sample 0: -log softmax(3 | 1,2,3); sample 1: -log(1/3).
  const double l0 = -std::log(std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) + std::exp(3.0)));
  const double l1 = std::log(3.0);
  EXPECT_NEAR(loss, (l0 + l1) / 2, 1e-5);
  // Gradient rows sum to zero.
  EXPECT_NEAR(dl.at(0, 0) + dl.at(0, 1) + dl.at(0, 2), 0.0, 1e-6);
  EXPECT_LT(dl.at(0, 2), 0.0f);  // true class pushed up
}

TEST(CountCorrect, CountsArgmaxHits) {
  Tensor logits({3, 2}, std::vector<float>{1, 0, 0, 1, 2, 5});
  EXPECT_EQ(count_correct(logits, {0, 1, 1}), 3);
  EXPECT_EQ(count_correct(logits, {1, 1, 0}), 1);
}

TEST(FakeQuant, QuantizesToGrid) {
  Tensor x({5}, std::vector<float>{-0.5f, 0.0f, 0.26f, 0.9f, 2.0f});
  Tensor y = fake_quant_forward(x, 2, 1.0f);  // levels {0, 1/3, 2/3, 1}
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[2], 1.0f / 3.0f, 1e-6);
  EXPECT_FLOAT_EQ(y[3], 1.0f);  // 0.9 -> nearest level 1.0
  EXPECT_FLOAT_EQ(y[4], 1.0f);  // clipped
}

TEST(FakeQuant, UncalibratedIsIdentity) {
  Tensor x({3}, std::vector<float>{-1, 0.5f, 9});
  Tensor y = fake_quant_forward(x, 4, 0.0f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(FakeQuant, BackwardMasksClippedRegion) {
  Tensor x({3}, std::vector<float>{-0.5f, 0.5f, 1.5f});
  Tensor dout({3}, 1.0f), dx({3});
  fake_quant_backward(x, 1.0f, dout, &dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 0.0f);
}

// Property sweep: conv output shape formula across parameter grid.
class ConvShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvShapeTest, OutputShapeFormula) {
  const auto [k, stride, pad] = GetParam();
  ConvSpec spec{2, 3, k, k, stride, pad, 1};
  const int in = 12;
  if ((in + 2 * pad - k) < 0) GTEST_SKIP();
  Tensor x({1, 2, in, in}), w(spec.weight_shape());
  Tensor y = conv2d_forward(x, w, nullptr, spec);
  EXPECT_EQ(y.dim(2), (in + 2 * pad - k) / stride + 1);
  EXPECT_EQ(y.dim(3), (in + 2 * pad - k) / stride + 1);
}

INSTANTIATE_TEST_SUITE_P(KernelGrid, ConvShapeTest,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace bswp::nn
