#include "runtime/pipeline.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "runtime/executor.h"

namespace bswp::runtime {
namespace {

struct PipelineEnv {
  nn::Graph graph;
  pool::PooledNetwork pooled;
  quant::CalibrationResult cal;
  data::SyntheticCifar data;

  explicit PipelineEnv(float width = 0.25f, uint64_t seed = 1)
      : data(
            [] {
              data::SyntheticCifarOptions o;
              o.train_size = 64;
              o.image_size = 16;
              return o;
            }(),
            true) {
    models::ModelOptions mo;
    mo.image_size = 16;
    mo.width = width;
    graph = models::build_resnet_s(mo);
    Rng rng(seed);
    graph.init_weights(rng);
    // One training-mode pass seeds BN running stats with sane values.
    data::Batch b = data.batch(0, 32);
    graph.forward(b.images, true);

    pool::CodecOptions co;
    co.pool_size = 16;
    co.kmeans_iters = 8;
    co.max_cluster_vectors = 4000;
    pooled = pool::build_weight_pool(graph, co);
    pool::reconstruct_weights(graph, pooled);

    quant::CalibrateOptions qo;
    qo.num_samples = 32;
    cal = quant::calibrate(graph, data, qo);
  }
};

TEST(Pipeline, CompilesResNetWithPooledAndBaselineLayers) {
  PipelineEnv s;
  CompileOptions opt;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  EXPECT_TRUE(net.has_lut);
  EXPECT_GT(net.count_kind(PlanKind::kConvBitSerial), 5);
  EXPECT_GE(net.count_kind(PlanKind::kConvBaseline), 1);  // first conv
  EXPECT_EQ(net.count_kind(PlanKind::kLinearBaseline), 1);
  EXPECT_GT(net.count_kind(PlanKind::kAdd), 0);
}

TEST(Pipeline, UncompressedBuildHasNoLut) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, nullptr, s.cal, CompileOptions{});
  EXPECT_FALSE(net.has_lut);
  EXPECT_EQ(net.count_kind(PlanKind::kConvBitSerial), 0);
}

TEST(Pipeline, BatchNormFoldedIntoRequant) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, CompileOptions{});
  // No plan kind exists for BN: it must be absorbed.
  for (const LayerPlan& p : net.plans) {
    EXPECT_NE(p.name.substr(0, 2), "bn");
  }
  // Requant scales differ across channels where BN gammas differ.
  bool per_channel_seen = false;
  for (const LayerPlan& p : net.plans) {
    if (p.kind != PlanKind::kConvBitSerial) continue;
    for (std::size_t c = 1; c < p.rq.scale.size(); ++c) {
      if (p.rq.scale[c] != p.rq.scale[0]) per_channel_seen = true;
    }
  }
  // Freshly initialized BN has gamma=1 everywhere, but running stats from the
  // training pass differ per channel, which shows up in the bias terms.
  bool bias_differs = false;
  for (const LayerPlan& p : net.plans) {
    if (p.kind != PlanKind::kConvBitSerial) continue;
    for (std::size_t c = 1; c < p.rq.bias.size(); ++c) {
      if (p.rq.bias[c] != p.rq.bias[0]) bias_differs = true;
    }
  }
  EXPECT_TRUE(per_channel_seen || bias_differs);
}

TEST(Pipeline, ReluChainsProduceUnsignedZeroPointOutputs) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, CompileOptions{});
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial || p.kind == PlanKind::kConvBaseline) {
      if (p.rq.fuse_relu) {
        EXPECT_EQ(p.out_zero_point, 0);
      } else {
        // Residual-branch convs produce offset-unsigned outputs.
        EXPECT_EQ(p.out_zero_point, 1 << (net.act_bits - 1));
      }
    }
  }
}

TEST(Pipeline, AutoPrecomputeFollowsFilterVsPoolRule) {
  PipelineEnv s;  // pool size 16; widths 16/32/64 at width=0.25 -> some layers > 16
  CompileOptions opt;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  for (const LayerPlan& p : net.plans) {
    if (p.kind != PlanKind::kConvBitSerial) continue;
    if (p.spec.out_ch > 16) {
      EXPECT_EQ(p.variant, kernels::BitSerialVariant::kCachedPrecompute) << p.name;
    } else {
      EXPECT_EQ(p.variant, kernels::BitSerialVariant::kCached) << p.name;
    }
  }
}

TEST(Pipeline, ForceVariantOverridesPolicy) {
  PipelineEnv s;
  CompileOptions opt;
  opt.force_variant = true;
  opt.forced_variant = kernels::BitSerialVariant::kInputReuse;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial) {
      EXPECT_EQ(p.variant, kernels::BitSerialVariant::kInputReuse);
    }
  }
}

TEST(Pipeline, ActBitsPropagateToPlans) {
  PipelineEnv s;
  CompileOptions opt;
  opt.act_bits = 4;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  EXPECT_EQ(net.act_bits, 4);
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial) {
      EXPECT_EQ(p.rq.out_bits, 4);
    }
  }
  EXPECT_THROW(
      {
        CompileOptions bad;
        bad.act_bits = 9;
        compile(s.graph, &s.pooled, s.cal, bad);
      },
      std::invalid_argument);
}

TEST(Pipeline, LutBitwidthPropagates) {
  PipelineEnv s;
  CompileOptions opt;
  opt.lut_bits = 4;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  EXPECT_EQ(net.lut.bitwidth, 4);
  for (int32_t e : net.lut.entries) {
    EXPECT_LE(e, 7);
    EXPECT_GE(e, -8);
  }
}

TEST(Pipeline, ClassifierLogitsAre16Bit) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, CompileOptions{});
  const LayerPlan& last = net.plans.back();
  EXPECT_EQ(last.kind, PlanKind::kLinearBaseline);
  EXPECT_EQ(last.out_bits, 16);
  EXPECT_TRUE(last.out_signed);
}

TEST(Pipeline, MobileNetCompilesWithSignedPointwiseInputs) {
  // MobileNet-v2 has residual adds without ReLU feeding 1x1 pooled convs —
  // the offset-unsigned + row-sum-correction path.
  data::SyntheticCifarOptions dopt;
  dopt.train_size = 32;
  dopt.image_size = 16;
  data::SyntheticCifar ds(dopt, true);
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  nn::Graph g = models::build_mobilenet_v2(mo);
  Rng rng(3);
  g.init_weights(rng);
  data::Batch b = ds.batch(0, 16);
  g.forward(b.images, true);

  pool::CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 5;
  co.max_cluster_vectors = 3000;
  pool::PooledNetwork pooled = pool::build_weight_pool(g, co);
  pool::reconstruct_weights(g, pooled);
  quant::CalibrateOptions qo;
  qo.num_samples = 16;
  quant::CalibrationResult cal = quant::calibrate(g, ds, qo);

  CompiledNetwork net = compile(g, &pooled, cal, CompileOptions{});
  EXPECT_GT(net.count_kind(PlanKind::kConvBitSerial), 10);
  // Depthwise layers stay baseline.
  int grouped_baseline = 0;
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBaseline && p.spec.groups > 1) ++grouped_baseline;
  }
  EXPECT_GT(grouped_baseline, 5);
  // And it runs.
  Tensor x({1, 3, 16, 16}, 0.5f);
  EXPECT_NO_THROW(Executor(net).run(x));
}

}  // namespace
}  // namespace bswp::runtime
