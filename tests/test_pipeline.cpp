#include "runtime/pipeline.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "runtime/evaluate.h"
#include "runtime/executor.h"

namespace bswp::runtime {
namespace {

struct PipelineEnv {
  nn::Graph graph;
  pool::PooledNetwork pooled;
  quant::CalibrationResult cal;
  data::SyntheticCifar data;

  explicit PipelineEnv(float width = 0.25f, uint64_t seed = 1)
      : data(
            [] {
              data::SyntheticCifarOptions o;
              o.train_size = 64;
              o.image_size = 16;
              return o;
            }(),
            true) {
    models::ModelOptions mo;
    mo.image_size = 16;
    mo.width = width;
    graph = models::build_resnet_s(mo);
    Rng rng(seed);
    graph.init_weights(rng);
    // One training-mode pass seeds BN running stats with sane values.
    data::Batch b = data.batch(0, 32);
    graph.forward(b.images, true);

    pool::CodecOptions co;
    co.pool_size = 16;
    co.kmeans_iters = 8;
    co.max_cluster_vectors = 4000;
    pooled = pool::build_weight_pool(graph, co);
    pool::reconstruct_weights(graph, pooled);

    quant::CalibrateOptions qo;
    qo.num_samples = 32;
    cal = quant::calibrate(graph, data, qo);
  }
};

TEST(Pipeline, CompilesResNetWithPooledAndBaselineLayers) {
  PipelineEnv s;
  CompileOptions opt;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  EXPECT_TRUE(net.has_lut);
  EXPECT_GT(net.count_kind(PlanKind::kConvBitSerial), 5);
  EXPECT_GE(net.count_kind(PlanKind::kConvBaseline), 1);  // first conv
  EXPECT_EQ(net.count_kind(PlanKind::kLinearBaseline), 1);
  EXPECT_GT(net.count_kind(PlanKind::kAdd), 0);
}

TEST(Pipeline, UncompressedBuildHasNoLut) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, nullptr, s.cal, CompileOptions{});
  EXPECT_FALSE(net.has_lut);
  EXPECT_EQ(net.count_kind(PlanKind::kConvBitSerial), 0);
}

TEST(Pipeline, BatchNormFoldedIntoRequant) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, CompileOptions{});
  // No plan kind exists for BN: it must be absorbed.
  for (const LayerPlan& p : net.plans) {
    EXPECT_NE(p.name.substr(0, 2), "bn");
  }
  // Requant scales differ across channels where BN gammas differ.
  bool per_channel_seen = false;
  for (const LayerPlan& p : net.plans) {
    if (p.kind != PlanKind::kConvBitSerial) continue;
    for (std::size_t c = 1; c < p.rq.scale.size(); ++c) {
      if (p.rq.scale[c] != p.rq.scale[0]) per_channel_seen = true;
    }
  }
  // Freshly initialized BN has gamma=1 everywhere, but running stats from the
  // training pass differ per channel, which shows up in the bias terms.
  bool bias_differs = false;
  for (const LayerPlan& p : net.plans) {
    if (p.kind != PlanKind::kConvBitSerial) continue;
    for (std::size_t c = 1; c < p.rq.bias.size(); ++c) {
      if (p.rq.bias[c] != p.rq.bias[0]) bias_differs = true;
    }
  }
  EXPECT_TRUE(per_channel_seen || bias_differs);
}

TEST(Pipeline, ReluChainsProduceUnsignedZeroPointOutputs) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, CompileOptions{});
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial || p.kind == PlanKind::kConvBaseline) {
      if (p.rq.fuse_relu) {
        EXPECT_EQ(p.out.zero_point, 0);
      } else {
        // Residual-branch convs produce offset-unsigned outputs.
        EXPECT_EQ(p.out.zero_point, 1 << (net.act_bits - 1));
      }
    }
  }
}

TEST(Pipeline, HeuristicModeFollowsFilterVsPoolRule) {
  PipelineEnv s;  // pool size 16; widths 16/32/64 at width=0.25 -> some layers > 16
  CompileOptions opt;
  opt.backend_select = BackendSelect::kHeuristic;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  for (const LayerPlan& p : net.plans) {
    if (p.kind != PlanKind::kConvBitSerial) continue;
    if (p.spec.out_ch > 16) {
      EXPECT_EQ(p.variant, kernels::BitSerialVariant::kCachedPrecompute) << p.name;
    } else {
      EXPECT_EQ(p.variant, kernels::BitSerialVariant::kCached) << p.name;
    }
  }
}

TEST(Pipeline, CostModelSelectionReportIsOptimalPerLayer) {
  PipelineEnv s;
  CompileOptions opt;  // default: BackendSelect::kCostModel
  CompileReport report;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt, &report);
  ASSERT_FALSE(report.backend_choices.empty());
  ASSERT_EQ(report.backend_choices.size(),
            static_cast<std::size_t>(net.count_kind(PlanKind::kConvBitSerial) +
                                     net.count_kind(PlanKind::kLinearBitSerial)));
  for (const BackendChoice& c : report.backend_choices) {
    // The chosen variant is the cheapest selectable candidate, and never
    // worse than what the old filters-vs-pool heuristic would have picked.
    for (const BackendCandidate& cand : c.candidates) {
      if (cand.selectable) {
        EXPECT_LE(c.chosen_cycles, cand.cycles) << c.layer;
      }
    }
    EXPECT_LE(c.chosen_cycles, c.heuristic_cycles) << c.layer;
    EXPECT_GT(c.chosen_cycles, 0.0) << c.layer;
  }
}

TEST(Pipeline, CostModelMatchesOrBeatsHeuristicLatency) {
  PipelineEnv s;
  CompileOptions cost_opt;
  CompileOptions heur_opt;
  heur_opt.backend_select = BackendSelect::kHeuristic;
  CompiledNetwork cost_net = compile(s.graph, &s.pooled, s.cal, cost_opt);
  CompiledNetwork heur_net = compile(s.graph, &s.pooled, s.cal, heur_opt);
  Tensor x({1, 3, 16, 16}, 0.25f);
  const LatencyReport cost_lat = estimate_latency(cost_net, sim::mc_large(), x);
  const LatencyReport heur_lat = estimate_latency(heur_net, sim::mc_large(), x);
  EXPECT_LE(cost_lat.cycles, heur_lat.cycles);
  // And both pipelines produce bit-identical logits (variants only differ in
  // cost, never in arithmetic).
  Executor a(cost_net), b(heur_net);
  EXPECT_EQ(a.run(x).data, b.run(x).data);
}

TEST(Pipeline, PassTraceRecordsTheDefaultPipeline) {
  PipelineEnv s;
  CompileOptions opt;
  opt.pass_trace = true;
  CompileReport report;
  compile(s.graph, &s.pooled, s.cal, opt, &report);
  ASSERT_EQ(report.pass_trace.size(), 6u);
  EXPECT_EQ(report.pass_trace[0].pass, "FoldBatchNorm");
  EXPECT_EQ(report.pass_trace[1].pass, "FuseActivations");
  EXPECT_EQ(report.pass_trace[2].pass, "EliminateDeadNodes");
  EXPECT_EQ(report.pass_trace[3].pass, "AssignActivationQuant");
  EXPECT_EQ(report.pass_trace[4].pass, "SelectBackends");
  EXPECT_EQ(report.pass_trace[5].pass, "Legalize");
  // ResNet-s has BN on every conv: the fold pass must report real work, and
  // fusion must shrink the graph further.
  EXPECT_GT(report.pass_trace[0].changes, 5);
  EXPECT_LT(report.pass_trace[1].live_after, report.pass_trace[1].live_before);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Pipeline, ForceVariantOverridesPolicy) {
  PipelineEnv s;
  CompileOptions opt;
  opt.force_variant = true;
  opt.forced_variant = kernels::BitSerialVariant::kInputReuse;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial) {
      EXPECT_EQ(p.variant, kernels::BitSerialVariant::kInputReuse);
    }
  }
}

TEST(Pipeline, ActBitsPropagateToPlans) {
  PipelineEnv s;
  CompileOptions opt;
  opt.act_bits = 4;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  EXPECT_EQ(net.act_bits, 4);
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial) {
      EXPECT_EQ(p.rq.out.bits, 4);
    }
  }
  EXPECT_THROW(
      {
        CompileOptions bad;
        bad.act_bits = 9;
        compile(s.graph, &s.pooled, s.cal, bad);
      },
      std::invalid_argument);
}

TEST(Pipeline, LutBitwidthPropagates) {
  PipelineEnv s;
  CompileOptions opt;
  opt.lut_bits = 4;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, opt);
  EXPECT_EQ(net.lut.bitwidth, 4);
  for (int32_t e : net.lut.entries) {
    EXPECT_LE(e, 7);
    EXPECT_GE(e, -8);
  }
}

TEST(Pipeline, ClassifierLogitsAre16Bit) {
  PipelineEnv s;
  CompiledNetwork net = compile(s.graph, &s.pooled, s.cal, CompileOptions{});
  const LayerPlan& last = net.plans.back();
  EXPECT_EQ(last.kind, PlanKind::kLinearBaseline);
  EXPECT_EQ(last.out.bits, 16);
  EXPECT_TRUE(last.out.is_signed);
}

TEST(Pipeline, MobileNetCompilesWithSignedPointwiseInputs) {
  // MobileNet-v2 has residual adds without ReLU feeding 1x1 pooled convs —
  // the offset-unsigned + row-sum-correction path.
  data::SyntheticCifarOptions dopt;
  dopt.train_size = 32;
  dopt.image_size = 16;
  data::SyntheticCifar ds(dopt, true);
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  nn::Graph g = models::build_mobilenet_v2(mo);
  Rng rng(3);
  g.init_weights(rng);
  data::Batch b = ds.batch(0, 16);
  g.forward(b.images, true);

  pool::CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 5;
  co.max_cluster_vectors = 3000;
  pool::PooledNetwork pooled = pool::build_weight_pool(g, co);
  pool::reconstruct_weights(g, pooled);
  quant::CalibrateOptions qo;
  qo.num_samples = 16;
  quant::CalibrationResult cal = quant::calibrate(g, ds, qo);

  CompiledNetwork net = compile(g, &pooled, cal, CompileOptions{});
  EXPECT_GT(net.count_kind(PlanKind::kConvBitSerial), 10);
  // Depthwise layers stay baseline.
  int grouped_baseline = 0;
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBaseline && p.spec.groups > 1) ++grouped_baseline;
  }
  EXPECT_GT(grouped_baseline, 5);
  // And it runs.
  Tensor x({1, 3, 16, 16}, 0.5f);
  EXPECT_NO_THROW(Executor(net).run(x));
}

}  // namespace
}  // namespace bswp::runtime
