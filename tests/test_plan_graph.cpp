// Pass-level tests for the PlanGraph lowering pipeline: behaviors the
// monolithic compiler could not express (dead-node elimination, ReLU fusion
// into linear layers) plus the unsupported-pattern diagnostics.
#include "runtime/lowering/plan_graph.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "runtime/executor.h"

namespace bswp::runtime {
namespace {

/// Hand-built calibration: every node range 1.0 (geometry tests don't need
/// data-derived ranges).
quant::CalibrationResult unit_calibration(const nn::Graph& g) {
  quant::CalibrationResult cal;
  cal.input_abs_max = 1.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    cal.node_range[i] = 1.0f;
    cal.node_abs_range[i] = 1.0f;
  }
  return cal;
}

TEST(PlanGraphPasses, ReluFusesIntoHiddenLinear) {
  // input -> flatten -> linear+ReLU (hidden) -> linear (classifier). The old
  // compiler emitted a standalone 16-bit-signed relu for the hidden layer;
  // FuseActivations folds it into the linear's requant clamp and the hidden
  // activation becomes unsigned act_bits — the shape the bit-serial linear
  // kernel requires.
  nn::Graph g;
  int x = g.input(4, 4, 4);
  x = g.flatten(x);
  x = g.linear(x, 32, true, "fc_hidden");
  x = g.relu(x);
  g.linear(x, 5, true, "fc_out");
  Rng rng(3);
  g.init_weights(rng);

  CompileOptions opt;
  opt.act_bits = 6;
  CompiledNetwork net = compile(g, nullptr, unit_calibration(g), opt);
  ASSERT_EQ(net.count_kind(PlanKind::kRelu), 0);  // fused, not standalone
  ASSERT_EQ(net.count_kind(PlanKind::kLinearBaseline), 2);
  const LayerPlan* hidden = nullptr;
  const LayerPlan* head = nullptr;
  for (const LayerPlan& p : net.plans) {
    if (p.name == "fc_hidden") hidden = &p;
    if (p.name == "fc_out") head = &p;
  }
  ASSERT_NE(hidden, nullptr);
  ASSERT_NE(head, nullptr);
  EXPECT_TRUE(hidden->rq.fuse_relu);
  EXPECT_EQ(hidden->out.bits, 6);
  EXPECT_FALSE(hidden->out.is_signed);
  EXPECT_EQ(hidden->out.zero_point, 0);
  // The unfused head keeps the 16-bit signed classifier contract.
  EXPECT_FALSE(head->rq.fuse_relu);
  EXPECT_EQ(head->out.bits, 16);
  EXPECT_TRUE(head->out.is_signed);
  // And the compiled MLP executes.
  Tensor img({1, 4, 4, 4}, 0.1f);
  EXPECT_EQ(Executor(net).run(img).shape, (std::vector<int>{1, 5}));
}

TEST(PlanGraphPasses, ReluWithMultipleConsumersStaysStandalone) {
  // The conv feeds both a ReLU and a GlobalAvgPool: the ReLU cannot be fused
  // (fusing would clamp the GAP branch too), so it must survive as a kRelu
  // plan reading the conv output.
  nn::Graph g;
  int x = g.input(8, 6, 6);
  int c = g.conv2d(x, 8, 3, 1, 1);
  int r = g.relu(c);
  int p1 = g.global_avgpool(r);
  int p2 = g.global_avgpool(c);  // second consumer of the conv
  g.add(p1, p2);
  Rng rng(4);
  g.init_weights(rng);

  CompiledNetwork net = compile(g, nullptr, unit_calibration(g), CompileOptions{});
  EXPECT_EQ(net.count_kind(PlanKind::kRelu), 1);
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBaseline) {
      EXPECT_FALSE(p.rq.fuse_relu);
    }
  }
}

TEST(PlanGraphPasses, DeadBranchIsEliminated) {
  nn::Graph g;
  int x = g.input(3, 8, 8);
  g.conv2d(x, 8, 3, 1, 1, 1, false, "dead_conv");  // never consumed
  int y = g.conv2d(x, 8, 3, 1, 1, 1, false, "live_conv");
  y = g.relu(y);
  y = g.global_avgpool(y);
  g.linear(y, 3);
  Rng rng(5);
  g.init_weights(rng);

  CompileOptions opt;
  opt.pass_trace = true;
  CompileReport report;
  CompiledNetwork net = compile(g, nullptr, unit_calibration(g), opt, &report);
  for (const LayerPlan& p : net.plans) EXPECT_NE(p.name, "dead_conv");
  EXPECT_EQ(net.count_kind(PlanKind::kConvBaseline), 1);
  bool saw_elimination = false;
  for (const PassTraceEntry& e : report.pass_trace) {
    if (e.pass == "EliminateDeadNodes") {
      EXPECT_EQ(e.changes, 1);
      EXPECT_EQ(e.live_after, e.live_before - 1);
      saw_elimination = true;
    }
  }
  EXPECT_TRUE(saw_elimination);
}

TEST(PlanGraphPasses, FakeQuantNodesAreSpliced) {
  nn::Graph g;
  int x = g.input(3, 8, 8);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.relu(x);
  x = g.fake_quant(x, 8);
  x = g.global_avgpool(x);
  x = g.fake_quant(x, 8);
  g.linear(x, 4);
  Rng rng(6);
  g.init_weights(rng);

  CompiledNetwork net = compile(g, nullptr, unit_calibration(g), CompileOptions{});
  // conv (relu fused) + input + gap + linear: FakeQuants leave no plans.
  EXPECT_EQ(net.plans.size(), 4u);
  Tensor img({1, 3, 8, 8}, 0.2f);
  EXPECT_NO_THROW(Executor(net).run(img));
}

TEST(PlanGraphPasses, BatchNormFoldsThroughFakeQuant) {
  // QAT graphs interleave FakeQuant identities: conv -> FQ -> BN -> ReLU must
  // fold exactly like conv -> BN -> ReLU (the FQ is spliced with the BN).
  nn::Graph g;
  int x = g.input(3, 8, 8);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.fake_quant(x, 8);
  x = g.batchnorm(x);
  x = g.relu(x);
  x = g.global_avgpool(x);
  g.linear(x, 4);
  Rng rng(7);
  g.init_weights(rng);
  // Seed BN running stats away from identity so the fold is observable.
  g.forward(Tensor({2, 3, 8, 8}, 0.5f), /*training=*/true);

  CompiledNetwork net = compile(g, nullptr, unit_calibration(g), CompileOptions{});
  // input, conv (BN + ReLU folded), gap, linear — nothing else survives.
  ASSERT_EQ(net.plans.size(), 4u);
  const LayerPlan& conv = net.plans[1];
  ASSERT_EQ(conv.kind, PlanKind::kConvBaseline);
  EXPECT_TRUE(conv.rq.fuse_relu);
  bool bias_differs = false;
  for (std::size_t c = 1; c < conv.rq.bias.size(); ++c) {
    if (conv.rq.bias[c] != conv.rq.bias[0]) bias_differs = true;
  }
  EXPECT_TRUE(bias_differs) << "BN running stats should show up in the folded requant bias";
}

/// The compile error for an unsupported pattern must carry the precise
/// message even when the offending node sits mid-graph.
void expect_compile_error(nn::Graph& g, const std::string& needle) {
  try {
    compile(g, nullptr, unit_calibration(g), CompileOptions{});
    FAIL() << "compile() should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(PlanGraphPasses, StandaloneBatchNormIsRejected) {
  nn::Graph g;
  int x = g.input(3, 8, 8);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.relu(x);          // ReLU between conv and BN: BN is not foldable
  x = g.batchnorm(x);
  x = g.global_avgpool(x);
  g.linear(x, 4);
  Rng rng(8);
  g.init_weights(rng);
  expect_compile_error(g, "standalone BatchNorm");
}

TEST(PlanGraphPasses, BinarizedGraphsAreRedirected) {
  nn::Graph g;
  int x = g.input(3, 8, 8);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.binarize(x);
  x = g.global_avgpool(x);
  g.linear(x, 4);
  Rng rng(9);
  g.init_weights(rng);
  expect_compile_error(g, "bswp::binary");
}

}  // namespace
}  // namespace bswp::runtime
