#include "quant/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/trainer.h"
#include "quant/calibrate.h"

namespace bswp::quant {
namespace {

TEST(SymmetricQuant, RoundTripWithinHalfStep) {
  Rng rng(1);
  Tensor t({128});
  rng.fill_normal(t, 1.0f);
  QTensor q = quantize_symmetric(t, 8);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(q.real(i), t[i], q.scale * 0.5f + 1e-6f);
  }
}

TEST(SymmetricQuant, ScaleCoversAbsMax) {
  Tensor t({3}, std::vector<float>{-2.0f, 0.5f, 1.0f});
  const float s = symmetric_scale(t, 8);
  EXPECT_NEAR(s, 2.0f / 127.0f, 1e-6);
  QTensor q = quantize_symmetric(t, 8, s);
  EXPECT_EQ(q.data[0], -127);
}

TEST(SymmetricQuant, ClampsOutOfRange) {
  Tensor t({2}, std::vector<float>{10.0f, -10.0f});
  QTensor q = quantize_symmetric(t, 8, 0.01f);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -128);
}

TEST(UnsignedQuant, RespectsBitsAndRange) {
  Tensor t({4}, std::vector<float>{-1.0f, 0.0f, 0.5f, 2.0f});
  QTensor q = quantize_unsigned(t, 4, 1.0f);
  EXPECT_EQ(q.data[0], 0);   // clamped below
  EXPECT_EQ(q.data[3], 15);  // clamped above
  EXPECT_EQ(q.qmax(), 15);
  EXPECT_FALSE(q.is_signed);
}

class UnsignedBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(UnsignedBitsTest, RoundTripErrorBoundedByStep) {
  const int bits = GetParam();
  Rng rng(3);
  Tensor t({256});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  QTensor q = quantize_unsigned(t, bits, 1.0f);
  const float step = 1.0f / static_cast<float>((1 << bits) - 1);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(q.real(i), t[i], step * 0.5f + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, UnsignedBitsTest, ::testing::Range(1, 9));

TEST(ClipSearch, PrefersClippingHeavyTails) {
  // Values mostly small with rare huge outliers: optimal clip is far below
  // the max (this is what makes iterative search beat max-calibration).
  Rng rng(5);
  std::vector<float> vals(5000);
  for (auto& v : vals) v = static_cast<float>(std::fabs(rng.normal(0.0, 0.1)));
  vals[0] = 2.0f;
  // At 4 bits the outlier would waste most of the 16 levels; the optimal
  // clip sits near the bulk of the distribution.
  const float clip = choose_clip_iterative(vals, 4);
  EXPECT_LT(clip, 1.0f);
  EXPECT_GT(clip, 0.05f);
  EXPECT_LT(unsigned_quant_mse(vals, 4, clip), unsigned_quant_mse(vals, 4, 2.0f));
}

TEST(ClipSearch, UniformDataClipsNearMax) {
  Rng rng(6);
  std::vector<float> vals(2000);
  for (auto& v : vals) v = static_cast<float>(rng.uniform(0.0, 1.0));
  const float clip = choose_clip_iterative(vals, 8);
  EXPECT_GT(clip, 0.9f);
}

TEST(ClipSearch, DegenerateInputs) {
  EXPECT_GT(choose_clip_iterative({}, 8), 0.0f);
  EXPECT_GT(choose_clip_iterative({0.0f, 0.0f}, 8), 0.0f);
}

TEST(RoundingRshift, RoundsToNearest) {
  EXPECT_EQ(rounding_rshift(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(rounding_rshift(5, 2), 1);    // 1.25 -> 1
  EXPECT_EQ(rounding_rshift(6, 2), 2);    // 1.5 -> 2 (round half up)
  EXPECT_EQ(rounding_rshift(-7, 2), -2);  // -1.75 -> -2
}

TEST(Calibrate, ProducesRangesForEveryNode) {
  data::SyntheticCifarOptions o;
  o.train_size = 64;
  o.image_size = 16;
  data::SyntheticCifar ds(o, true);
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  nn::Graph g = models::build_tinyconv(mo);
  Rng rng(7);
  g.init_weights(rng);

  CalibrateOptions co;
  co.num_samples = 32;
  CalibrationResult cal = calibrate(g, ds, co);
  EXPECT_GT(cal.input_abs_max, 0.0f);
  for (int i = 0; i < g.num_nodes(); ++i) {
    ASSERT_TRUE(cal.node_range.count(i)) << "node " << i;
    EXPECT_GT(cal.node_range.at(i), 0.0f);
    EXPECT_GT(cal.node_abs_range.at(i), 0.0f);
  }
}

TEST(Calibrate, AppliesRangesToFakeQuantNodes) {
  data::SyntheticCifarOptions o;
  o.train_size = 32;
  o.image_size = 16;
  data::SyntheticCifar ds(o, true);
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  mo.fake_quant = true;
  nn::Graph g = models::build_tinyconv(mo);
  Rng rng(8);
  g.init_weights(rng);
  CalibrateOptions co;
  co.num_samples = 32;
  CalibrationResult cal = calibrate(g, ds, co);
  apply_ranges_to_fake_quant(g, cal);
  int fq_count = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).op == nn::Op::kFakeQuant) {
      ++fq_count;
      EXPECT_GT(g.node(i).fq_range, 0.0f);
    }
  }
  EXPECT_GT(fq_count, 0);
}

}  // namespace
}  // namespace bswp::quant
