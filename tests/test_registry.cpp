// Tests for the kernel-backend registry: built-in registration, variant
// fallback, custom backend injection, and the XNOR binary backend executing
// through the engine loop without engine changes.
#include "runtime/kernel_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "binary/binary_backend.h"
#include "core/rng.h"
#include "runtime/executor.h"
#include "runtime/pipeline.h"
#include "runtime/serialize.h"

namespace bswp::runtime {
namespace {

/// One-shot arena run for the hand-built networks below.
QTensor run(const CompiledNetwork& net, const Tensor& image) {
  Executor exec(net);
  return exec.run(image);
}

TEST(Registry, BuiltinBackendsRegistered) {
  KernelRegistry& reg = KernelRegistry::instance();
  EXPECT_NE(reg.find(PlanKind::kInput, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kConvBaseline, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kLinearBaseline, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kMaxPool, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kGlobalAvgPool, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kAdd, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kFlatten, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kRelu, kAnyVariant), nullptr);
  EXPECT_NE(reg.find(PlanKind::kConvBinary, kAnyVariant), nullptr);
  // Every bit-serial variant has its own conv and linear backend.
  for (int v = 0; v <= static_cast<int>(kernels::BitSerialVariant::kCachedMemoize); ++v) {
    EXPECT_NE(reg.find(PlanKind::kConvBitSerial, v), nullptr) << "variant " << v;
    EXPECT_NE(reg.find(PlanKind::kLinearBitSerial, v), nullptr) << "variant " << v;
  }
  EXPECT_GE(reg.registered().size(), 19u);
}

TEST(Registry, VariantLookupFallsBackToWildcard) {
  KernelRegistry& reg = KernelRegistry::instance();
  // Baseline conv is registered under the wildcard; any variant resolves it.
  const KernelBackend* b = reg.find(PlanKind::kConvBaseline, 3);
  ASSERT_NE(b, nullptr);
  EXPECT_STREQ(b->name(), "baseline/conv");
  // Bit-serial conv has no wildcard entry: an unknown variant fails.
  EXPECT_EQ(reg.find(PlanKind::kConvBitSerial, 99), nullptr);
  EXPECT_THROW(reg.resolve(PlanKind::kConvBitSerial, 99), std::runtime_error);
}

TEST(Registry, DuplicateRegistrationRejectedUnlessReplacing) {
  KernelRegistry& reg = KernelRegistry::instance();

  class Dummy : public KernelBackend {
   public:
    const char* name() const override { return "test/dummy"; }
    void execute(const ExecContext& ctx) const override {
      const kernels::QView& in = ctx.input(0);
      kernels::QView& out = *ctx.out;
      out.rank = in.rank;
      for (int i = 0; i < in.rank; ++i) out.shape[i] = in.shape[i];
      out.len = in.len;
      out.set_meta(in);
      std::copy(in.data, in.data + in.len, out.data);
    }
  };

  EXPECT_THROW(reg.add(PlanKind::kRelu, kAnyVariant, std::make_unique<Dummy>()),
               std::invalid_argument);
  // Replace, verify, then restore the original backend.
  std::unique_ptr<KernelBackend> original =
      reg.add(PlanKind::kRelu, kAnyVariant, std::make_unique<Dummy>(), /*replace=*/true);
  ASSERT_NE(original, nullptr);
  EXPECT_STREQ(reg.resolve(PlanKind::kRelu, kAnyVariant).name(), "test/dummy");
  reg.add(PlanKind::kRelu, kAnyVariant, std::move(original), /*replace=*/true);
  EXPECT_STREQ(reg.resolve(PlanKind::kRelu, kAnyVariant).name(), "structural/relu");
}

TEST(Registry, CustomBackendExecutesThroughEngine) {
  KernelRegistry& reg = KernelRegistry::instance();

  // A counting wrapper around the real maxpool backend: executor dispatch
  // must reach backends injected after the fact, with zero executor changes.
  struct CountingBackend : KernelBackend {
    const KernelBackend* inner = nullptr;
    mutable int calls = 0;
    const char* name() const override { return "test/counting-maxpool"; }
    void execute(const ExecContext& ctx) const override {
      ++calls;
      inner->execute(ctx);
    }
    std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
      return inner->scratch_bytes(net, plan);
    }
  };

  auto counting = std::make_unique<CountingBackend>();
  CountingBackend* counting_raw = counting.get();
  std::unique_ptr<KernelBackend> original =
      reg.add(PlanKind::kMaxPool, kAnyVariant, std::move(counting), /*replace=*/true);
  counting_raw->inner = original.get();

  // input -> conv -> maxpool network, built by hand.
  nn::Graph g;
  int x = g.input(4, 8, 8);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.relu(x);
  g.maxpool(x, 2, 2);
  Rng rng(7);
  g.init_weights(rng);
  quant::CalibrationResult cal;
  cal.input_abs_max = 1.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    cal.node_range[i] = 1.0f;
    cal.node_abs_range[i] = 1.0f;
  }
  CompiledNetwork net = compile(g, nullptr, cal, CompileOptions{});
  run(net, Tensor({4, 8, 8}, 0.25f));
  EXPECT_EQ(counting_raw->calls, 1);

  reg.add(PlanKind::kMaxPool, kAnyVariant, std::move(original), /*replace=*/true);
  EXPECT_STREQ(reg.resolve(PlanKind::kMaxPool, kAnyVariant).name(), "baseline/maxpool");
}

// --- binary (XNOR) backend --------------------------------------------------

/// Hand-built two-plan network: quantized input -> binarized conv.
CompiledNetwork binary_net(const Tensor& w, const nn::ConvSpec& spec) {
  CompiledNetwork net;
  LayerPlan input;
  input.kind = PlanKind::kInput;
  input.name = "input";
  input.out_chw = {spec.in_ch, 6, 6};
  input.out.scale = 1.0f / 127.0f;
  input.out.bits = 8;
  input.out.is_signed = true;
  net.plans.push_back(input);

  kernels::Requant rq;
  rq.scale.assign(static_cast<std::size_t>(spec.out_ch), 1.0f);
  rq.bias.assign(static_cast<std::size_t>(spec.out_ch), 0.0f);
  rq.out.scale = 1.0f;
  rq.out.bits = 8;
  rq.out.is_signed = true;
  rq.out.zero_point = 0;
  rq.fuse_relu = false;

  LayerPlan conv = binary::make_binary_conv_plan(w, spec, rq);
  conv.name = "xnor";
  conv.inputs = {0};
  conv.out_chw = {spec.out_ch, 6, 6};
  net.plans.push_back(conv);
  return net;
}

TEST(BinaryBackend, MatchesSignConvReference) {
  nn::ConvSpec spec;
  spec.in_ch = 4;
  spec.out_ch = 2;
  spec.kh = spec.kw = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.groups = 1;
  Tensor w({2, 4, 3, 3});
  Rng rng(11);
  rng.fill_normal(w, 1.0f);

  CompiledNetwork net = binary_net(w, spec);
  Tensor image({1, 4, 6, 6});
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = (i % 3 == 0) ? 0.5f : -0.25f;
  QTensor out = run(net, image);
  ASSERT_EQ(out.shape, (std::vector<int>{1, 2, 6, 6}));

  // Reference: sign(x) (*) sign(w) with -1 padding, scaled by alpha=mean|w|.
  for (int o = 0; o < 2; ++o) {
    double mean_abs = 0.0;
    for (int c = 0; c < 4; ++c)
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx) mean_abs += std::fabs(w.at(o, c, ky, kx));
    const float alpha = static_cast<float>(mean_abs / 36.0);
    for (int oy = 0; oy < 6; ++oy) {
      for (int ox = 0; ox < 6; ++ox) {
        int acc = 0;
        for (int c = 0; c < 4; ++c) {
          for (int ky = 0; ky < 3; ++ky) {
            for (int kx = 0; kx < 3; ++kx) {
              const int iy = oy + ky - 1, ix = ox + kx - 1;
              float xv = -1.0f;  // padding binarizes to -1
              if (iy >= 0 && iy < 6 && ix >= 0 && ix < 6) {
                xv = image.at(0, c, iy, ix) >= 0.0f ? 1.0f : -1.0f;
              }
              const float wv = w.at(o, c, ky, kx) >= 0.0f ? 1.0f : -1.0f;
              acc += static_cast<int>(xv * wv);
            }
          }
        }
        const float expected = alpha * static_cast<float>(acc);
        const int16_t got = out.data[(static_cast<std::size_t>(o) * 6 + oy) * 6 + ox];
        EXPECT_NEAR(static_cast<float>(got), expected, 0.5f + 1e-3f)
            << "o=" << o << " y=" << oy << " x=" << ox;
      }
    }
  }
}

TEST(BinaryBackend, RoundTripsThroughSerialization) {
  nn::ConvSpec spec;
  spec.in_ch = 4;
  spec.out_ch = 2;
  spec.kh = spec.kw = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.groups = 1;
  Tensor w({2, 4, 3, 3});
  Rng rng(12);
  rng.fill_normal(w, 1.0f);
  CompiledNetwork net = binary_net(w, spec);

  std::stringstream buf;
  save_network(net, buf);
  CompiledNetwork loaded = load_network(buf);
  ASSERT_EQ(loaded.plans.size(), net.plans.size());
  EXPECT_EQ(loaded.plans[1].kind, PlanKind::kConvBinary);

  Tensor image({4, 6, 6}, 0.3f);
  EXPECT_EQ(run(loaded, image).data, run(net, image).data);
  EXPECT_EQ(footprint(loaded).flash_bytes, footprint(net).flash_bytes);
}

}  // namespace
}  // namespace bswp::runtime
