#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/tensor.h"

namespace bswp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = r.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Rng, UniformIntZeroIsZero) {
  Rng r(1);
  EXPECT_EQ(r.uniform_int(0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  r.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_NE(v[0] * 49 + v[1], 0 * 49 + 1);  // overwhelmingly likely moved
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng child = parent.split();
  Rng parent2(21);
  Rng child2 = parent2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, KaimingInitHasExpectedStddev) {
  Rng r(31);
  Tensor t({64, 64});
  r.fill_kaiming(t, 128);
  double sum2 = 0;
  for (std::size_t i = 0; i < t.size(); ++i) sum2 += static_cast<double>(t[i]) * t[i];
  const double stddev = std::sqrt(sum2 / static_cast<double>(t.size()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 128.0), 0.01);
}

}  // namespace
}  // namespace bswp
