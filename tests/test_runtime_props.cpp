// Property sweeps over the compiled runtime: invariants that must hold for
// every (pool size, activation bitwidth, LUT bitwidth) combination, on a
// small but non-trivial pooled network.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"
#include "quant/calibrate.h"
#include "runtime/evaluate.h"
#include "runtime/pipeline.h"

namespace bswp::runtime {
namespace {

/// One-shot arena run helpers (each sweep point compiles its own network).
QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter = nullptr) {
  Executor exec(net);
  return exec.run(image, counter);
}

Tensor run_logits(const CompiledNetwork& net, const Tensor& image) {
  return run(net, image).dequantize();
}

struct Env {
  nn::Graph graph;
  pool::PooledNetwork pooled;
  quant::CalibrationResult cal;
  data::SyntheticCifar data;
  Tensor sample;

  Env()
      : data(
            [] {
              data::SyntheticCifarOptions o;
              o.train_size = 48;
              o.image_size = 12;
              return o;
            }(),
            true),
        sample({1, 3, 12, 12}) {
    int x = graph.input(3, 12, 12);
    x = graph.conv2d(x, 16, 3, 1, 1);
    x = graph.relu(x);
    x = graph.conv2d(x, 24, 3, 1, 1);
    x = graph.batchnorm(x);
    x = graph.relu(x);
    x = graph.conv2d(x, 24, 1, 1, 0);
    x = graph.relu(x);
    x = graph.global_avgpool(x);
    graph.linear(x, 5);
    Rng rng(9);
    graph.init_weights(rng);
    data::Batch b = data.batch(0, 16);
    graph.forward(b.images, true);

    pool::CodecOptions co;
    co.pool_size = 16;
    co.kmeans_iters = 6;
    pooled = pool::build_weight_pool(graph, co);
    pool::reconstruct_weights(graph, pooled);
    quant::CalibrateOptions qo;
    qo.num_samples = 32;
    cal = quant::calibrate(graph, data, qo);
    data.sample(0, sample.data());
  }
};

Env& env() {
  static Env e;
  return e;
}

class ActBitsGrid : public ::testing::TestWithParam<int> {};

TEST_P(ActBitsGrid, RunsAndIsDeterministic) {
  Env& e = env();
  CompileOptions opt;
  opt.act_bits = GetParam();
  CompiledNetwork net = compile(e.graph, &e.pooled, e.cal, opt);
  QTensor a = run(net, e.sample);
  QTensor b = run(net, e.sample);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.shape, (std::vector<int>{1, 5}));
}

TEST_P(ActBitsGrid, CostMonotoneInBitwidth) {
  Env& e = env();
  const int bits = GetParam();
  if (bits == 8) return;
  CompileOptions lo, hi;
  lo.act_bits = bits;
  hi.act_bits = bits + 1;
  sim::CostCounter cl, ch;
  run(compile(e.graph, &e.pooled, e.cal, lo), e.sample, &cl);
  run(compile(e.graph, &e.pooled, e.cal, hi), e.sample, &ch);
  const sim::McuProfile mcu = sim::mc_large();
  EXPECT_LT(mcu.cycles(cl), mcu.cycles(ch)) << "bits " << bits;
}

INSTANTIATE_TEST_SUITE_P(OneToEight, ActBitsGrid, ::testing::Range(1, 9));

class LutBitsGrid : public ::testing::TestWithParam<int> {};

TEST_P(LutBitsGrid, WideLutMatchesNoLutLogitsClosely) {
  Env& e = env();
  CompileOptions opt;
  opt.lut_bits = GetParam();
  CompiledNetwork pooled_net = compile(e.graph, &e.pooled, e.cal, opt);
  CompiledNetwork ref_net = compile(e.graph, nullptr, e.cal, CompileOptions{});
  Tensor lq = run_logits(pooled_net, e.sample);
  Tensor rq = run_logits(ref_net, e.sample);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < lq.size(); ++i) {
    err += std::abs(lq[i] - rq[i]);
    norm += std::abs(rq[i]);
  }
  // Wide LUTs track the baseline closely; 4-bit is allowed to drift more.
  const double tolerance = GetParam() >= 8 ? 0.30 : 1.0;
  EXPECT_LT(err, tolerance * norm + 0.5) << "Bl=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Table5Grid, LutBitsGrid, ::testing::Values(4, 8, 16, 32));

TEST(RuntimePolicy, NarrowLayersSkipLutCaching) {
  // With a 64-entry pool, an 8-filter layer cannot amortize the block copies
  // and compiles to plain input-reuse; >=16 filters get the cache.
  nn::Graph g;
  int x = g.input(8, 8, 8);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.relu(x);
  x = g.conv2d(x, 16, 3, 1, 1);
  x = g.relu(x);
  x = g.conv2d(x, 96, 3, 1, 1);  // > pool size -> precompute
  x = g.relu(x);
  x = g.global_avgpool(x);
  g.linear(x, 3);
  Rng rng(10);
  g.init_weights(rng);

  data::SyntheticCifarOptions dopt;
  dopt.train_size = 16;
  dopt.image_size = 8;
  data::SyntheticCifar ds(dopt, true);
  // 8-channel input requires an 8-channel dataset; calibrate on activations
  // of a forward pass instead by wrapping the graph input.
  // Simpler: calibrate with max mode over random tensors via the dataset is
  // not possible here, so build the calibration by hand.
  quant::CalibrationResult cal;
  cal.input_abs_max = 1.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    cal.node_range[i] = 1.0f;
    cal.node_abs_range[i] = 1.0f;
  }

  pool::CodecOptions co;
  co.pool_size = 64;
  co.kmeans_iters = 4;
  pool::PooledNetwork pooled = pool::build_weight_pool(g, co);
  CompileOptions opt;
  opt.backend_select = BackendSelect::kHeuristic;  // this tests the §4.3 policy
  CompiledNetwork net = compile(g, &pooled, cal, opt);
  std::vector<kernels::BitSerialVariant> variants;
  for (const LayerPlan& p : net.plans) {
    if (p.kind == PlanKind::kConvBitSerial) variants.push_back(p.variant);
  }
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(variants[0], kernels::BitSerialVariant::kInputReuse);        // 8 filters
  EXPECT_EQ(variants[1], kernels::BitSerialVariant::kCached);            // 16 filters
  EXPECT_EQ(variants[2], kernels::BitSerialVariant::kCachedPrecompute);  // 96 filters
}

class GroupSizeGrid : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizeGrid, FullPipelineRunsAtNonDefaultGroupSizes) {
  // Table 1 studies group sizes 4/8/16; the runtime must support them all
  // (LUT has 2^G entries per pool vector, kernels unpack G-element vectors).
  const int G = GetParam();
  Env& e = env();
  pool::CodecOptions co;
  co.pool_size = 8;
  co.group_size = G;
  co.kmeans_iters = 4;
  nn::Graph g = e.graph;
  pool::PooledNetwork pooled = pool::build_weight_pool(g, co);
  pool::reconstruct_weights(g, pooled);
  quant::CalibrateOptions qo;
  qo.num_samples = 16;
  quant::CalibrationResult cal = quant::calibrate(g, e.data, qo);
  CompiledNetwork net = compile(g, &pooled, cal, CompileOptions{});
  EXPECT_EQ(net.lut.group_size, G);
  EXPECT_EQ(net.lut.entries.size(), static_cast<std::size_t>(1 << G) * 8);
  QTensor out = run(net, e.sample);
  EXPECT_EQ(out.shape, (std::vector<int>{1, 5}));
  // Variant equivalence holds at every group size.
  CompileOptions forced;
  forced.force_variant = true;
  forced.forced_variant = kernels::BitSerialVariant::kInputReuse;
  QTensor out2 = run(compile(g, &pooled, cal, forced), e.sample);
  EXPECT_EQ(out.data, out2.data);
}

INSTANTIATE_TEST_SUITE_P(Table1Sizes, GroupSizeGrid, ::testing::Values(4, 8, 12));

TEST(RuntimeProps, FootprintIndependentOfWeights) {
  Env& e = env();
  CompiledNetwork a = compile(e.graph, &e.pooled, e.cal, CompileOptions{});
  nn::Graph g2 = e.graph;
  Rng rng(123);
  for (int node : g2.conv_nodes(true)) rng.fill_normal(g2.node(node).weight, 0.5f);
  CompiledNetwork b = compile(g2, &e.pooled, e.cal, CompileOptions{});
  EXPECT_EQ(footprint(a).flash_bytes, footprint(b).flash_bytes);
  EXPECT_EQ(footprint(a).sram_bytes, footprint(b).sram_bytes);
}

TEST(RuntimeProps, EventCountsIndependentOfInputData) {
  // Cost is a function of geometry: two different images yield identical
  // event tallies (no data-dependent control flow in the deployed variants).
  Env& e = env();
  CompiledNetwork net = compile(e.graph, &e.pooled, e.cal, CompileOptions{});
  Tensor other({1, 3, 12, 12}, 0.7f);
  sim::CostCounter c1, c2;
  run(net, e.sample, &c1);
  run(net, other, &c2);
  for (int i = 0; i < sim::kNumEvents; ++i) {
    EXPECT_EQ(c1.count(static_cast<sim::Event>(i)), c2.count(static_cast<sim::Event>(i)));
  }
}

}  // namespace
}  // namespace bswp::runtime
