#include "runtime/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/rng.h"
#include "data/synthetic.h"
#include "quant/calibrate.h"
#include "runtime/engine.h"
#include "runtime/pipeline.h"

namespace bswp::runtime {
namespace {

struct Env {
  nn::Graph graph;
  pool::PooledNetwork pooled;
  CompiledNetwork net;
  Tensor sample{std::vector<int>{1, 3, 12, 12}};

  Env() {
    int x = graph.input(3, 12, 12);
    x = graph.conv2d(x, 16, 3, 1, 1);
    x = graph.batchnorm(x);
    x = graph.relu(x);
    x = graph.maxpool(x, 2, 2);
    x = graph.conv2d(x, 24, 3, 1, 1);
    x = graph.relu(x);
    x = graph.global_avgpool(x);
    graph.linear(x, 4);
    Rng rng(3);
    graph.init_weights(rng);

    data::SyntheticCifarOptions o;
    o.train_size = 32;
    o.image_size = 12;
    data::SyntheticCifar ds(o, true);
    data::Batch b = ds.batch(0, 16);
    graph.forward(b.images, true);

    pool::CodecOptions co;
    co.pool_size = 16;
    co.kmeans_iters = 5;
    pooled = pool::build_weight_pool(graph, co);
    pool::reconstruct_weights(graph, pooled);
    quant::CalibrateOptions qo;
    qo.num_samples = 16;
    quant::CalibrationResult cal = quant::calibrate(graph, ds, qo);
    net = compile(graph, &pooled, cal, CompileOptions{});
    ds.sample(0, sample.data());
  }
};

Env& env() {
  static Env e;
  return e;
}

TEST(Serialize, RoundTripPreservesStructure) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  CompiledNetwork loaded = load_network(buf);
  ASSERT_EQ(loaded.plans.size(), e.net.plans.size());
  EXPECT_EQ(loaded.act_bits, e.net.act_bits);
  EXPECT_EQ(loaded.has_lut, e.net.has_lut);
  EXPECT_EQ(loaded.lut.entries, e.net.lut.entries);
  for (std::size_t i = 0; i < loaded.plans.size(); ++i) {
    EXPECT_EQ(loaded.plans[i].kind, e.net.plans[i].kind) << i;
    EXPECT_EQ(loaded.plans[i].inputs, e.net.plans[i].inputs) << i;
    EXPECT_EQ(loaded.plans[i].indices.idx, e.net.plans[i].indices.idx) << i;
    EXPECT_EQ(loaded.plans[i].qweights.data, e.net.plans[i].qweights.data) << i;
  }
}

TEST(Serialize, RoundTripBitIdenticalInference) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  CompiledNetwork loaded = load_network(buf);
  QTensor a = run(e.net, e.sample);
  QTensor b = run(loaded, e.sample);
  EXPECT_EQ(a.data, b.data);
}

TEST(Serialize, RoundTripPreservesFootprintAndCost) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  CompiledNetwork loaded = load_network(buf);
  EXPECT_EQ(footprint(loaded).flash_bytes, footprint(e.net).flash_bytes);
  EXPECT_EQ(footprint(loaded).sram_bytes, footprint(e.net).sram_bytes);
  sim::CostCounter ca, cb;
  run(e.net, e.sample, &ca);
  run(loaded, e.sample, &cb);
  for (int i = 0; i < sim::kNumEvents; ++i) {
    EXPECT_EQ(ca.count(static_cast<sim::Event>(i)), cb.count(static_cast<sim::Event>(i)));
  }
}

TEST(Serialize, FileRoundTrip) {
  Env& e = env();
  const std::string path = "/tmp/bswp_test_net.bin";
  save_network(e.net, path);
  CompiledNetwork loaded = load_network(path);
  EXPECT_EQ(loaded.plans.size(), e.net.plans.size());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buf;
  buf << "not a bswp file at all";
  EXPECT_THROW(load_network(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  const std::string full = buf.str();
  std::stringstream cut;
  cut << full.substr(0, full.size() / 2);
  EXPECT_THROW(load_network(cut), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_network("/tmp/definitely_not_here_bswp.bin"), std::runtime_error);
}

TEST(ExportCHeader, EmitsArraysAndCountsFlash) {
  Env& e = env();
  const std::string path = "/tmp/bswp_test_net.h";
  const std::size_t bytes = export_c_header(e.net, path, "mynet");
  EXPECT_GT(bytes, e.net.lut.storage_bytes());  // at least the LUT
  std::ifstream is(path);
  std::stringstream content;
  content << is.rdbuf();
  const std::string s = content.str();
  EXPECT_NE(s.find("mynet_lut"), std::string::npos);
  EXPECT_NE(s.find("_indices"), std::string::npos);
  EXPECT_NE(s.find("_weights"), std::string::npos);  // first conv stays int8
  EXPECT_NE(s.find("#include <stdint.h>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportCHeader, FlashBytesTrackFootprintWeights) {
  // The exported arrays cover LUT + indices + weights; the footprint model
  // additionally counts requant constants at 8 bytes/channel, the header
  // emits them as two float arrays (same 8 bytes/channel).
  Env& e = env();
  const std::string path = "/tmp/bswp_test_net2.h";
  const std::size_t bytes = export_c_header(e.net, path, "n");
  EXPECT_EQ(bytes, footprint(e.net).flash_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bswp::runtime
