#include "runtime/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/rng.h"
#include "data/synthetic.h"
#include "quant/calibrate.h"
#include "runtime/executor.h"
#include "runtime/pipeline.h"

namespace bswp::runtime {
namespace {

/// One-shot arena run (the tests here compare saved/loaded networks).
QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter = nullptr) {
  Executor exec(net);
  return exec.run(image, counter);
}

struct Env {
  nn::Graph graph;
  pool::PooledNetwork pooled;
  CompiledNetwork net;
  Tensor sample{std::vector<int>{1, 3, 12, 12}};
  std::unique_ptr<data::SyntheticCifar> ds;

  Env() {
    int x = graph.input(3, 12, 12);
    x = graph.conv2d(x, 16, 3, 1, 1);
    x = graph.batchnorm(x);
    x = graph.relu(x);
    x = graph.maxpool(x, 2, 2);
    x = graph.conv2d(x, 24, 3, 1, 1);
    x = graph.relu(x);
    x = graph.global_avgpool(x);
    graph.linear(x, 4);
    Rng rng(3);
    graph.init_weights(rng);

    data::SyntheticCifarOptions o;
    o.train_size = 32;
    o.image_size = 12;
    ds = std::make_unique<data::SyntheticCifar>(o, true);
    data::Batch b = ds->batch(0, 16);
    graph.forward(b.images, true);

    pool::CodecOptions co;
    co.pool_size = 16;
    co.kmeans_iters = 5;
    pooled = pool::build_weight_pool(graph, co);
    pool::reconstruct_weights(graph, pooled);
    quant::CalibrateOptions qo;
    qo.num_samples = 16;
    quant::CalibrationResult cal = quant::calibrate(graph, *ds, qo);
    net = compile(graph, &pooled, cal, CompileOptions{});
    ds->sample(0, sample.data());
  }

  const data::Dataset* cal_data() const { return ds.get(); }
};

Env& env() {
  static Env e;
  return e;
}

TEST(Serialize, RoundTripPreservesStructure) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  CompiledNetwork loaded = load_network(buf);
  ASSERT_EQ(loaded.plans.size(), e.net.plans.size());
  EXPECT_EQ(loaded.act_bits, e.net.act_bits);
  EXPECT_EQ(loaded.has_lut, e.net.has_lut);
  EXPECT_EQ(loaded.lut.entries, e.net.lut.entries);
  for (std::size_t i = 0; i < loaded.plans.size(); ++i) {
    EXPECT_EQ(loaded.plans[i].kind, e.net.plans[i].kind) << i;
    EXPECT_EQ(loaded.plans[i].inputs, e.net.plans[i].inputs) << i;
    EXPECT_EQ(loaded.plans[i].indices.idx, e.net.plans[i].indices.idx) << i;
    EXPECT_EQ(loaded.plans[i].qweights.data, e.net.plans[i].qweights.data) << i;
  }
}

TEST(Serialize, RoundTripBitIdenticalInference) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  CompiledNetwork loaded = load_network(buf);
  QTensor a = run(e.net, e.sample);
  QTensor b = run(loaded, e.sample);
  EXPECT_EQ(a.data, b.data);
}

TEST(Serialize, RoundTripPreservesFootprintAndCost) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  CompiledNetwork loaded = load_network(buf);
  EXPECT_EQ(footprint(loaded).flash_bytes, footprint(e.net).flash_bytes);
  EXPECT_EQ(footprint(loaded).sram_bytes, footprint(e.net).sram_bytes);
  sim::CostCounter ca, cb;
  run(e.net, e.sample, &ca);
  run(loaded, e.sample, &cb);
  for (int i = 0; i < sim::kNumEvents; ++i) {
    EXPECT_EQ(ca.count(static_cast<sim::Event>(i)), cb.count(static_cast<sim::Event>(i)));
  }
}

TEST(Serialize, FileRoundTrip) {
  Env& e = env();
  const std::string path = "/tmp/bswp_test_net.bin";
  save_network(e.net, path);
  CompiledNetwork loaded = load_network(path);
  EXPECT_EQ(loaded.plans.size(), e.net.plans.size());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buf;
  buf << "not a bswp file at all";
  EXPECT_THROW(load_network(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  const std::string full = buf.str();
  std::stringstream cut;
  cut << full.substr(0, full.size() / 2);
  EXPECT_THROW(load_network(cut), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_network("/tmp/definitely_not_here_bswp.bin"), std::runtime_error);
}

TEST(ExportCHeader, EmitsArraysAndCountsFlash) {
  Env& e = env();
  const std::string path = "/tmp/bswp_test_net.h";
  const std::size_t bytes = export_c_header(e.net, path, "mynet");
  EXPECT_GT(bytes, e.net.lut.storage_bytes());  // at least the LUT
  std::ifstream is(path);
  std::stringstream content;
  content << is.rdbuf();
  const std::string s = content.str();
  EXPECT_NE(s.find("mynet_lut"), std::string::npos);
  EXPECT_NE(s.find("_indices"), std::string::npos);
  EXPECT_NE(s.find("_weights"), std::string::npos);  // first conv stays int8
  EXPECT_NE(s.find("#include <stdint.h>"), std::string::npos);
  std::remove(path.c_str());
}

// --- exhaustive round-trip coverage -----------------------------------------

void expect_networks_equal(const CompiledNetwork& a, const CompiledNetwork& b) {
  ASSERT_EQ(a.plans.size(), b.plans.size());
  EXPECT_EQ(a.act_bits, b.act_bits);
  EXPECT_EQ(a.input_scale, b.input_scale);
  EXPECT_EQ(a.has_lut, b.has_lut);
  EXPECT_EQ(a.lut.entries, b.lut.entries);
  EXPECT_EQ(a.lut.bitwidth, b.lut.bitwidth);
  EXPECT_EQ(a.lut.group_size, b.lut.group_size);
  for (std::size_t i = 0; i < a.plans.size(); ++i) {
    const LayerPlan& p = a.plans[i];
    const LayerPlan& q = b.plans[i];
    EXPECT_EQ(p.kind, q.kind) << i;
    EXPECT_EQ(p.name, q.name) << i;
    EXPECT_EQ(p.inputs, q.inputs) << i;
    EXPECT_EQ(p.variant, q.variant) << i;
    EXPECT_EQ(p.qweights.data, q.qweights.data) << i;
    EXPECT_EQ(p.qweights.scale, q.qweights.scale) << i;
    EXPECT_EQ(p.indices.idx, q.indices.idx) << i;
    EXPECT_EQ(p.rq.scale, q.rq.scale) << i;
    EXPECT_EQ(p.rq.bias, q.rq.bias) << i;
    EXPECT_EQ(p.rq.out.bits, q.rq.out.bits) << i;
    EXPECT_EQ(p.out.scale, q.out.scale) << i;
    EXPECT_EQ(p.out.zero_point, q.out.zero_point) << i;
    EXPECT_EQ(p.out.bits, q.out.bits) << i;
    EXPECT_EQ(p.out.is_signed, q.out.is_signed) << i;
    EXPECT_EQ(p.out_chw, q.out_chw) << i;
  }
}

CompiledNetwork roundtrip(const CompiledNetwork& net) {
  std::stringstream buf;
  save_network(net, buf);
  return load_network(buf);
}

class ActBitsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ActBitsRoundTrip, BitIdenticalAcrossActBitwidths) {
  Env& e = env();
  CompileOptions opt;
  opt.act_bits = GetParam();
  quant::CalibrateOptions qo;
  qo.num_samples = 16;
  qo.act_bits = GetParam();
  nn::Graph g = e.graph;
  quant::CalibrationResult cal = quant::calibrate(g, *e.cal_data(), qo);
  CompiledNetwork net = compile(g, &e.pooled, cal, opt);
  CompiledNetwork loaded = roundtrip(net);
  expect_networks_equal(net, loaded);
  EXPECT_EQ(run(loaded, e.sample).data, run(net, e.sample).data);
  // The classifier keeps its 16-bit signed logits plan through the container.
  EXPECT_EQ(loaded.plans.back().out.bits, 16);
  EXPECT_TRUE(loaded.plans.back().out.is_signed);
}

INSTANTIATE_TEST_SUITE_P(TwoFourEight, ActBitsRoundTrip, ::testing::Values(2, 4, 8));

TEST(Serialize, SixteenBitActivationsAreRejectedAtCompileTime) {
  // 16-bit activations exist only on the classifier output; the engine's
  // activation path is 1..8 bits and compile() enforces it.
  Env& e = env();
  CompileOptions opt;
  opt.act_bits = 16;
  quant::CalibrateOptions qo;
  qo.num_samples = 8;
  nn::Graph g = e.graph;
  quant::CalibrationResult cal = quant::calibrate(g, *e.cal_data(), qo);
  EXPECT_THROW(compile(g, &e.pooled, cal, opt), std::invalid_argument);
}

class VariantRoundTrip : public ::testing::TestWithParam<kernels::BitSerialVariant> {};

TEST_P(VariantRoundTrip, EveryBitSerialVariantRoundTrips) {
  Env& e = env();
  CompileOptions opt;
  opt.force_variant = true;
  opt.forced_variant = GetParam();
  quant::CalibrateOptions qo;
  qo.num_samples = 16;
  nn::Graph g = e.graph;
  quant::CalibrationResult cal = quant::calibrate(g, *e.cal_data(), qo);
  CompiledNetwork net = compile(g, &e.pooled, cal, opt);
  CompiledNetwork loaded = roundtrip(net);
  expect_networks_equal(net, loaded);
  for (const LayerPlan& p : loaded.plans) {
    if (p.kind == PlanKind::kConvBitSerial) {
      EXPECT_EQ(p.variant, GetParam());
    }
  }
  EXPECT_EQ(run(loaded, e.sample).data, run(net, e.sample).data);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantRoundTrip,
                         ::testing::Values(kernels::BitSerialVariant::kNaive,
                                           kernels::BitSerialVariant::kInputReuse,
                                           kernels::BitSerialVariant::kCached,
                                           kernels::BitSerialVariant::kCachedPrecompute,
                                           kernels::BitSerialVariant::kCachedMemoize));

TEST(Serialize, EveryPlanKindRoundTrips) {
  // A second topology covering the plan kinds Env lacks: residual add,
  // standalone relu, flatten, and a bit-serial (pooled) linear layer. The
  // first conv (4 input channels, not a multiple of G=8) stays baseline so
  // the bit-serial layers see unsigned activations.
  nn::Graph g;
  int x = g.input(4, 8, 8);
  int c1 = g.conv2d(x, 16, 3, 1, 1);
  c1 = g.relu(c1);
  int c2 = g.conv2d(c1, 16, 3, 1, 1);
  int s = g.add(c1, c2);
  s = g.relu(s);
  s = g.maxpool(s, 2, 2);
  s = g.relu(s);  // after maxpool: compiles to a standalone relu plan
  s = g.flatten(s);
  g.linear(s, 6);
  Rng rng(21);
  g.init_weights(rng);

  quant::CalibrationResult cal;
  cal.input_abs_max = 1.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    cal.node_range[i] = 1.0f;
    cal.node_abs_range[i] = 1.0f;
  }
  pool::CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 5;
  co.pool_fc = true;  // footnote-1 configuration: pooled FC -> kLinearBitSerial
  pool::PooledNetwork pooled = pool::build_weight_pool(g, co);
  pool::reconstruct_weights(g, pooled);
  CompiledNetwork net = compile(g, &pooled, cal, CompileOptions{});

  EXPECT_GT(net.count_kind(PlanKind::kConvBaseline), 0);
  EXPECT_GT(net.count_kind(PlanKind::kConvBitSerial), 0);
  EXPECT_GT(net.count_kind(PlanKind::kLinearBitSerial), 0);
  EXPECT_GT(net.count_kind(PlanKind::kAdd), 0);
  EXPECT_GT(net.count_kind(PlanKind::kRelu), 0);
  EXPECT_GT(net.count_kind(PlanKind::kFlatten), 0);
  EXPECT_GT(net.count_kind(PlanKind::kMaxPool), 0);

  CompiledNetwork loaded = roundtrip(net);
  expect_networks_equal(net, loaded);
  Tensor img({4, 8, 8}, 0.4f);
  EXPECT_EQ(run(loaded, img).data, run(net, img).data);
}

TEST(Serialize, RejectsTruncationAtEveryPrefix) {
  Env& e = env();
  std::stringstream buf;
  save_network(e.net, buf);
  const std::string full = buf.str();
  for (double frac : {0.05, 0.25, 0.5, 0.75, 0.95, 0.999}) {
    std::stringstream cut;
    cut << full.substr(0, static_cast<std::size_t>(static_cast<double>(full.size()) * frac));
    EXPECT_THROW(load_network(cut), std::runtime_error) << "fraction " << frac;
  }
}

TEST(ExportCHeader, FlashBytesTrackFootprintWeights) {
  // The exported arrays cover LUT + indices + weights; the footprint model
  // additionally counts requant constants at 8 bytes/channel, the header
  // emits them as two float arrays (same 8 bytes/channel).
  Env& e = env();
  const std::string path = "/tmp/bswp_test_net2.h";
  const std::size_t bytes = export_c_header(e.net, path, "n");
  EXPECT_EQ(bytes, footprint(e.net).flash_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bswp::runtime
