// InferenceServer tests: bit-identity of served results vs Session::run for
// every model-zoo network under concurrent multi-client submission, batching
// triggers (full batch vs deadline partial batch), bounded-queue
// backpressure observable through admission counters (kReject/kShedOldest),
// kBlock completion, weighted-deficit scheduling (starvation-freedom of a
// weight-1 model under a saturating weight-8 storm), per-request priority
// classes, worker-affinity accounting, autoscaler grow/shrink hysteresis,
// drain/shutdown semantics with in-flight requests, and the shared
// LatencyRecorder. Everything here also runs under the TSan CI job — the
// suite is the concurrency contract of the serving subsystem.
#include "runtime/server/inference_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "runtime/clock.h"
#include "runtime/latency_recorder.h"
#include "runtime/pipeline.h"

namespace bswp::runtime {
namespace {

using namespace std::chrono_literals;

// --- LatencyRecorder ---------------------------------------------------------

TEST(LatencyRecorder, NearestRankPercentiles) {
  LatencyRecorder rec;
  for (int v = 1; v <= 100; ++v) rec.record(static_cast<double>(v));
  const LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.p50_us, 50.0);
  EXPECT_EQ(s.p95_us, 95.0);
  EXPECT_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.5);
}

TEST(LatencyRecorder, SingleSampleAndEmpty) {
  EXPECT_EQ(LatencyRecorder::summarize({}).count, 0u);
  const LatencySummary s = LatencyRecorder::summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.p50_us, 42.0);
  EXPECT_EQ(s.p99_us, 42.0);
  EXPECT_EQ(s.mean_us, 42.0);
}

TEST(LatencyRecorder, WindowKeepsMostRecentSamples) {
  LatencyRecorder rec(4);
  for (int v = 1; v <= 10; ++v) rec.record(static_cast<double>(v));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total(), 10u);
  const LatencySummary s = rec.summary();  // window holds {7, 8, 9, 10}
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean_us, 8.5);
  EXPECT_EQ(s.p99_us, 10.0);
}

TEST(LatencyRecorder, MergeEqualsPercentilesOfConcatenatedWindows) {
  // Two recorders with very different distributions: averaging their p99s
  // would land near 550, but the p99 of the union is what merge() must
  // produce — the whole point of cluster-level aggregation.
  LatencyRecorder a, b;
  for (int v = 1; v <= 99; ++v) a.record(static_cast<double>(v));        // 1..99
  for (int v = 1; v <= 11; ++v) b.record(static_cast<double>(v * 100));  // 100..1100
  std::vector<double> concat;
  for (double v : a.samples()) concat.push_back(v);
  for (double v : b.samples()) concat.push_back(v);
  const LatencySummary expect = LatencyRecorder::summarize(concat);

  LatencyRecorder merged;
  merged.merge(a);
  merged.merge(b);
  const LatencySummary got = merged.summary();
  EXPECT_EQ(got.count, 110u);
  EXPECT_EQ(got.p50_us, expect.p50_us);
  EXPECT_EQ(got.p95_us, expect.p95_us);
  EXPECT_EQ(got.p99_us, expect.p99_us);
  EXPECT_DOUBLE_EQ(got.mean_us, expect.mean_us);
  // And it is NOT the mean-of-p99s value.
  EXPECT_NE(got.p99_us, (a.summary().p99_us + b.summary().p99_us) / 2.0);
}

TEST(LatencyRecorder, MergeWalksCappedSourceInChronologicalOrder) {
  // The source ring has wrapped: retained samples are {7..10}, with the
  // ring cursor mid-array. merge() must append them oldest-first so a
  // capped destination keeps the most RECENT of the source's samples.
  LatencyRecorder src(4);
  for (int v = 1; v <= 10; ++v) src.record(static_cast<double>(v));
  LatencyRecorder dst(2);
  dst.merge(src);  // chronological append: 7, 8, then 9, 10 overwrite
  const LatencySummary s = dst.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_us, 9.5);  // {9, 10}

  // Merging into an unbounded recorder preserves every retained sample.
  LatencyRecorder all;
  all.merge(src);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all.summary().mean_us, 8.5);  // {7, 8, 9, 10}
}

// --- environment -------------------------------------------------------------

/// Compile a model through the pass pipeline with a unit-range synthetic
/// calibration (no pool, no training): serving correctness depends only on
/// the integer kernels being deterministic, not on learned weights.
bswp::Session compile_session(const models::NamedModel& m, const models::ModelOptions& mo,
                              uint64_t seed) {
  nn::Graph g = m.build(mo);
  Rng rng(seed);
  g.init_weights(rng);
  quant::CalibrationResult cal;
  cal.input_abs_max = 1.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    cal.node_range[i] = 1.0f;
    cal.node_abs_range[i] = 1.0f;
  }
  return bswp::Session(compile(g, nullptr, cal, CompileOptions{}));
}

Tensor random_image(Rng& rng, int channels, int hw) {
  Tensor x({1, channels, hw, hw});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

/// One small CIFAR-shaped model for the scheduler-behavior tests.
struct SmallModel {
  bswp::Session session;
  std::vector<Tensor> images;
  std::vector<QTensor> refs;

  explicit SmallModel(int n_images = 32)
      : session(compile_session(models::paper_models()[1] /* ResNet-s */, small_opts(), 11)) {
    Rng rng(99);
    for (int i = 0; i < n_images; ++i) {
      images.push_back(random_image(rng, 3, 16));
      refs.push_back(session.run(images.back()));
    }
  }

  static models::ModelOptions small_opts() {
    models::ModelOptions mo;
    mo.image_size = 16;
    mo.num_classes = 4;
    mo.width = 0.25f;
    return mo;
  }
};

SmallModel& small_model() {
  static SmallModel m;
  return m;
}

ServerOptions quick_options(int workers, int max_batch, std::chrono::microseconds delay,
                            std::size_t capacity = 256,
                            QueuePolicy policy = QueuePolicy::kBlock) {
  ServerOptions o;
  o.workers = workers;
  o.batching.max_batch = max_batch;
  o.batching.max_delay = delay;
  o.queue.capacity = capacity;
  o.queue.policy = policy;
  return o;
}

// --- bit-identity across the zoo under concurrent clients --------------------

TEST(InferenceServer, ZooBitIdenticalUnderConcurrentMultiClientSubmission) {
  // Every paper network served concurrently from one server; six client
  // threads interleave submissions across all models, and every future must
  // be bit-identical to single-shot Session::run on the same image.
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.num_classes = 4;
  mo.width = 0.25f;

  const std::vector<models::NamedModel> zoo = models::paper_models();
  std::vector<bswp::Session> sessions;
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    sessions.push_back(compile_session(zoo[i], mo, 100 + i));
  }

  InferenceServer server(quick_options(/*workers=*/4, /*max_batch=*/6, 300us));
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    server.register_model(zoo[i].name, sessions[i].network());
  }

  // Pre-generate every request's image and reference logits on the main
  // thread; clients only submit and collect.
  constexpr int kClients = 6;
  constexpr int kPerModel = 2;  // requests per (client, model)
  struct Planned {
    std::string model;
    Tensor image;
    QTensor ref;
  };
  Rng rng(5);
  std::vector<std::vector<Planned>> plan(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t mi = 0; mi < zoo.size(); ++mi) {
      for (int r = 0; r < kPerModel; ++r) {
        Planned p;
        p.model = zoo[mi].name;
        p.image = random_image(rng, 3, 16);
        p.ref = sessions[mi].run(p.image);
        plan[c].push_back(std::move(p));
      }
    }
  }

  std::vector<std::vector<std::future<QTensor>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (Planned& p : plan[c]) {
        futures[c].push_back(server.submit(p.model, p.image));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < plan[c].size(); ++i) {
      const QTensor got = futures[c][i].get();
      EXPECT_EQ(got.data, plan[c][i].ref.data)
          << "client " << c << " request " << i << " model " << plan[c][i].model;
      EXPECT_EQ(got.scale, plan[c][i].ref.scale);
    }
  }

  server.drain();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.admission.accepted, static_cast<std::uint64_t>(kClients * kPerModel * zoo.size()));
  EXPECT_EQ(s.admission.completed, s.admission.accepted);
  EXPECT_EQ(s.admission.failed, 0u);
  EXPECT_EQ(s.admission.rejected, 0u);
  EXPECT_EQ(s.admission.shed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  ASSERT_EQ(s.models.size(), zoo.size());  // registration order
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(s.models[i].model, zoo[i].name);
    EXPECT_EQ(s.models[i].admission.completed,
              static_cast<std::uint64_t>(kClients * kPerModel));
  }
}

// --- batching triggers -------------------------------------------------------

TEST(InferenceServer, FullBatchDispatchesBeforeDeadline) {
  SmallModel& m = small_model();
  // The deadline is far away: only the max_batch trigger can dispatch, so 8
  // requests must form exactly two batches of 4.
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/4, 10s));
  server.register_model("m", m.session.network());

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit("m", m.images[i]));
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(futs[i].wait_for(60s), std::future_status::ready) << "request " << i;
    EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
  server.drain();
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.batches, 2u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 4.0);
  ASSERT_EQ(s.batch_size_hist.size(), 5u);
  EXPECT_EQ(s.batch_size_hist[4], 2u);
}

TEST(InferenceServer, DeadlineTriggersPartialBatch) {
  SmallModel& m = small_model();
  // max_batch 64 can never fill from 3 requests: only the queue-delay
  // deadline can dispatch them.
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/64, 2ms));
  server.register_model("m", m.session.network());

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(server.submit("m", m.images[i]));
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(futs[i].wait_for(60s), std::future_status::ready);
    EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
  server.drain();
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.completed, 3u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_LE(s.mean_batch_size, 3.0);  // nothing ever reached max_batch
}

// --- backpressure ------------------------------------------------------------

TEST(InferenceServer, RejectPolicyObservableViaAdmissionCounters) {
  SmallModel& m = small_model();
  // max_batch > capacity and a far-away deadline (nothing can dispatch the
  // queued requests before this test's assertions run, even on a heavily
  // loaded TSan runner): the first 3 requests sit in the queue, so the next
  // 3 must overflow. drain() flushes them at the end regardless.
  InferenceServer server(
      quick_options(/*workers=*/1, /*max_batch=*/16, 10s, /*capacity=*/3, QueuePolicy::kReject));
  server.register_model("m", m.session.network());

  std::vector<std::future<QTensor>> accepted;
  for (int i = 0; i < 3; ++i) accepted.push_back(server.submit("m", m.images[i]));
  std::vector<std::future<QTensor>> overflow;
  for (int i = 3; i < 6; ++i) overflow.push_back(server.submit("m", m.images[i]));

  {
    const ModelStats s = server.model_stats("m");
    EXPECT_EQ(s.admission.accepted, 3u);
    EXPECT_EQ(s.admission.rejected, 3u);
    EXPECT_EQ(s.queue_depth, 3u);
  }
  for (std::future<QTensor>& f : overflow) {
    try {
      f.get();
      FAIL() << "overflow request was not rejected";
    } catch (const ServerRejected& e) {
      EXPECT_EQ(e.reason(), ServerRejected::Reason::kQueueFull);
    }
  }
  server.drain();
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_EQ(accepted[i].get().data, m.refs[i].data);
  }
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.completed, 3u);
  EXPECT_EQ(s.admission.rejected, 3u);
  EXPECT_EQ(s.admission.shed, 0u);
}

TEST(InferenceServer, ShedOldestEvictsTheOldestQueuedRequests) {
  SmallModel& m = small_model();
  // Same far-away deadline as the kReject test: the queue must still hold
  // requests 0..2 when 3..5 arrive, whatever the CI load.
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/16, 10s, /*capacity=*/3,
                                       QueuePolicy::kShedOldest));
  server.register_model("m", m.session.network());

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(server.submit("m", m.images[i]));

  // Requests 0..2 were the oldest when 3..5 arrived into the full queue.
  for (int i = 0; i < 3; ++i) {
    try {
      futs[i].get();
      FAIL() << "oldest request " << i << " was not shed";
    } catch (const ServerRejected& e) {
      EXPECT_EQ(e.reason(), ServerRejected::Reason::kShed);
    }
  }
  server.drain();
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(futs[i].get().data, m.refs[i].data) << "newest request " << i;
  }
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.accepted, 6u);  // all six were admitted...
  EXPECT_EQ(s.admission.shed, 3u);      // ...and the three oldest evicted
  EXPECT_EQ(s.admission.completed, 3u);
  EXPECT_EQ(s.admission.rejected, 0u);
}

TEST(InferenceServer, BlockPolicyCompletesEverythingUnderSustainedOverload) {
  SmallModel& m = small_model();
  // Tiny queue + instant dispatch: submitters routinely hit the full queue
  // and must block until the scheduler frees space. Nothing may be lost.
  InferenceServer server(
      quick_options(/*workers=*/2, /*max_batch=*/2, 0us, /*capacity=*/2, QueuePolicy::kBlock));
  server.register_model("m", m.session.network());

  constexpr int kClients = 4, kPerClient = 8;
  std::vector<std::vector<std::future<QTensor>>> futs(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futs[c].push_back(server.submit("m", m.images[(c * kPerClient + i) % m.images.size()]));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      EXPECT_EQ(futs[c][i].get().data, m.refs[(c * kPerClient + i) % m.refs.size()].data);
    }
  }
  server.drain();
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.accepted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.admission.completed, s.admission.accepted);
  EXPECT_EQ(s.admission.rejected, 0u);
  EXPECT_EQ(s.admission.shed, 0u);
}

// --- priority scheduling -----------------------------------------------------

TEST(InferenceServer, WeightedSchedulingNeverStarvesColdModelUnderHotSaturation) {
  SmallModel& m = small_model();
  // One worker, instant-dispatch batching: the weight-8 "hot" model is kept
  // saturated by a closed-loop client the whole test, and the weight-1
  // "cold" model must still complete its requests *while the storm runs* —
  // the weighted scheduler grants every model credits each cycle, so cold
  // is slowed, never starved.
  ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/4, 0us, /*capacity=*/16,
                                   QueuePolicy::kBlock);
  InferenceServer server(so);
  ModelConfig hot_cfg{so.batching, so.queue, /*weight=*/8};
  ModelConfig cold_cfg{so.batching, so.queue, /*weight=*/1};
  server.register_model("hot", m.session.network(), hot_cfg);
  server.register_model("cold", m.session.network(), cold_cfg);

  constexpr int kHot = 600;
  std::atomic<bool> storm_done{false};
  std::vector<std::future<QTensor>> hot_futs;
  hot_futs.reserve(kHot);
  std::thread hot_client([&] {
    for (int i = 0; i < kHot; ++i) {
      hot_futs.push_back(
          server.submit("hot", m.images[static_cast<std::size_t>(i) % m.images.size()]));
    }
    storm_done.store(true);
  });

  // Wait until the hot queue is genuinely saturated before the cold model
  // has to compete for dispatch slots.
  while (server.model_stats("hot").queue_depth < 8 && !storm_done.load()) {
    std::this_thread::yield();
  }

  std::vector<std::future<QTensor>> cold_futs;
  for (int i = 0; i < 8; ++i) cold_futs.push_back(server.submit("cold", m.images[i]));
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(cold_futs[i].wait_for(60s), std::future_status::ready)
        << "cold request " << i << " starved under hot load";
    EXPECT_EQ(cold_futs[i].get().data, m.refs[i].data);
  }
  // 8 cold requests need ~2 scheduling cycles; the 600-request storm runs
  // ~150 batches — cold must have finished long before the storm did.
  EXPECT_FALSE(storm_done.load())
      << "hot storm drained before cold completed; saturation was not exercised";

  hot_client.join();
  server.drain();
  const ServerStats s = server.stats();
  ASSERT_EQ(s.models.size(), 2u);
  const ModelStats& hot = s.models[0];
  const ModelStats& cold = s.models[1];
  EXPECT_EQ(hot.weight, 8);
  EXPECT_EQ(cold.weight, 1);
  EXPECT_EQ(hot.admission.completed, static_cast<std::uint64_t>(kHot));
  EXPECT_EQ(cold.admission.completed, 8u);
  // Dispatch accounting: every request dispatched exactly once, share sums
  // to 1 and follows the traffic (hot carried ~99% of it here).
  EXPECT_EQ(hot.dispatched, hot.admission.completed);
  EXPECT_EQ(cold.dispatched, cold.admission.completed);
  EXPECT_GT(hot.dispatch_share, cold.dispatch_share);
  EXPECT_DOUBLE_EQ(hot.dispatch_share + cold.dispatch_share, 1.0);
  EXPECT_EQ(hot.affinity_hits + hot.affinity_misses, hot.batches);
  EXPECT_EQ(cold.affinity_hits + cold.affinity_misses, cold.batches);
}

TEST(InferenceServer, RoundRobinPolicyStillServesAllModels) {
  SmallModel& m = small_model();
  ServerOptions so = quick_options(/*workers=*/2, /*max_batch=*/4, 500us);
  so.schedule = SchedulePolicy::kRoundRobin;
  InferenceServer server(so);
  server.register_model("a", m.session.network());
  server.register_model("b", m.session.network());

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(server.submit(i % 2 == 0 ? "a" : "b", m.images[i]));
  }
  server.drain();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.admission.completed, 12u);
  EXPECT_EQ(s.models[0].admission.completed, 6u);
  EXPECT_EQ(s.models[1].admission.completed, 6u);
}

TEST(InferenceServer, HighClassDispatchesFirstAndShedsLast) {
  SmallModel& m = small_model();
  // capacity 2 + unreachable batching triggers: the queue state is fully
  // under this test's control until drain(). kShedOldest must evict normal
  // requests (oldest first) and touch a kHigh request only when nothing
  // else is queued.
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/16, 10s, /*capacity=*/2,
                                       QueuePolicy::kShedOldest));
  server.register_model("m", m.session.network());

  std::future<QTensor> h1 = server.submit("m", m.images[0], RequestClass::kHigh);
  std::future<QTensor> n1 = server.submit("m", m.images[1]);
  // Queue: {high: [h1], norm: [n1]} — full from here on.
  std::future<QTensor> n2 = server.submit("m", m.images[2]);  // sheds n1
  std::future<QTensor> h2 = server.submit("m", m.images[3], RequestClass::kHigh);  // sheds n2
  std::future<QTensor> n3 = server.submit("m", m.images[4]);  // norm empty: sheds h1

  for (std::future<QTensor>* f : {&n1, &n2, &h1}) {
    try {
      f->get();
      FAIL() << "expected shed";
    } catch (const ServerRejected& e) {
      EXPECT_EQ(e.reason(), ServerRejected::Reason::kShed);
    }
  }
  server.drain();
  EXPECT_EQ(h2.get().data, m.refs[3].data);
  EXPECT_EQ(n3.get().data, m.refs[4].data);
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.accepted, 5u);
  EXPECT_EQ(s.admission.shed, 3u);
  EXPECT_EQ(s.admission.completed, 2u);
}

// --- worker affinity ---------------------------------------------------------

TEST(InferenceServer, AffinityHitAccountingSingleWorker) {
  SmallModel& m = small_model();
  // One worker: the first batch must build the executor (miss); every later
  // batch lands on the now-warm worker (hit).
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/4, 10s));
  server.register_model("m", m.session.network());

  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<QTensor>> futs;
    for (int i = 0; i < 4; ++i) futs.push_back(server.submit("m", m.images[i]));
    server.drain();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.batches, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.affinity_misses, 1u);
  EXPECT_EQ(s.affinity_hits, static_cast<std::uint64_t>(kRounds - 1));
}

TEST(InferenceServer, AffinityCountersPartitionBatchesAcrossWorkers) {
  SmallModel& m = small_model();
  // Two workers, many rounds of two concurrent batches: each worker builds
  // the executor at most once, so misses are bounded by the worker count
  // and everything else must be a hit. (Which worker takes which batch is
  // timing-dependent; the partition invariant is not.)
  InferenceServer server(quick_options(/*workers=*/2, /*max_batch=*/2, 10s));
  server.register_model("m", m.session.network());

  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<QTensor>> futs;
    for (int i = 0; i < 4; ++i) futs.push_back(server.submit("m", m.images[i]));
    server.drain();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.batches, static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_GE(s.affinity_misses, 1u);
  EXPECT_LE(s.affinity_misses, 2u);  // at most one executor build per worker
  EXPECT_EQ(s.affinity_hits, s.batches - s.affinity_misses);
}

// --- autoscaler (virtual clock) ----------------------------------------------

/// Real-time-bounded poll for an effect of a virtual-clock advance. The
/// manual clock keeps every scheduler *decision* a function of virtual time
/// (the safety property under test); this helper only supplies liveness —
/// the scheduler's manual-clock wait re-polls its predicate every ~200 us of
/// real time, so effects land shortly after the advance that caused them.
template <typename Pred>
bool eventually(Pred pred, std::chrono::seconds timeout = 30s) {
  const auto until = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

TEST(InferenceServer, AutoscalerGrowsOnBacklogShrinksWhenIdleWithHysteresis) {
  SmallModel& m = small_model();
  ManualClock clock;
  // Backlog that cannot dispatch: a 64-wide batch never fills from 8
  // requests and the 10-minute window never elapses while virtual time only
  // moves when this test advances it — so every evaluation observes exactly
  // the queue we built, and the whole grow/shrink trajectory is a
  // deterministic function of the advances below. No sleeps, no load races.
  ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/64,
                                   std::chrono::microseconds(600'000'000),
                                   /*capacity=*/1024, QueuePolicy::kBlock);
  so.clock = &clock;
  so.autoscaler.enabled = true;
  so.autoscaler.min_workers = 1;
  so.autoscaler.max_workers = 3;
  so.autoscaler.interval = 1ms;
  so.autoscaler.up_queue_per_worker = 1.0;
  so.autoscaler.up_consecutive = 2;
  so.autoscaler.down_consecutive = 3;
  so.autoscaler.cooldown = 2ms;
  InferenceServer server(so);
  server.register_model("m", m.session.network());
  EXPECT_EQ(server.worker_count(), 1);

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit("m", m.images[i]));

  // Each 1 ms advance crosses exactly one evaluation boundary; waiting on
  // the autoscale_evals counter confirms the scheduler has observed it
  // before the post-conditions are asserted.
  std::uint64_t evals = 0;
  const auto advance_one_eval = [&] {
    clock.advance(1ms);
    ++evals;
    ASSERT_TRUE(eventually([&] { return server.stats().autoscale_evals >= evals; }))
        << "scheduler never observed evaluation " << evals;
  };

  advance_one_eval();  // pressure streak 1/2
  EXPECT_EQ(server.worker_count(), 1);
  advance_one_eval();  // streak 2/2, cooldown satisfied: 1 -> 2
  EXPECT_EQ(server.worker_count(), 2);
  advance_one_eval();  // streak restarted by the scale event
  EXPECT_EQ(server.worker_count(), 2);
  advance_one_eval();  // streak 2/2 again, 2 ms since last event: 2 -> 3
  EXPECT_EQ(server.worker_count(), 3);
  advance_one_eval();  // pinned at max_workers: the streak clamps,
  advance_one_eval();  // further pressure produces no event
  EXPECT_EQ(server.worker_count(), 3);
  EXPECT_EQ(server.stats().scale_up_events, 2u);

  server.drain();  // flush dispatches the backlog; queues empty, pool idle
  for (std::size_t i = 0; i < futs.size(); ++i) {
    EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }

  advance_one_eval();  // relief streak 1/3
  advance_one_eval();  // 2/3
  EXPECT_EQ(server.worker_count(), 3);
  advance_one_eval();  // 3/3: 3 -> 2
  EXPECT_EQ(server.worker_count(), 2);
  advance_one_eval();
  advance_one_eval();
  advance_one_eval();  // 3/3 again, cooldown satisfied: 2 -> 1
  EXPECT_EQ(server.worker_count(), 1);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.current_workers, 1);
  EXPECT_EQ(s.peak_workers, 3);
  EXPECT_EQ(s.scale_up_events, 2u);    // 1 -> 2 -> 3, never past max
  EXPECT_EQ(s.scale_down_events, 2u);  // 3 -> 2 -> 1, never past min

  // No oscillation: many more observed evaluations at min_workers with empty
  // queues must not produce another scale event (no wall-clock settling).
  for (int i = 0; i < 6; ++i) advance_one_eval();
  const ServerStats settled = server.stats();
  EXPECT_EQ(settled.scale_up_events, s.scale_up_events);
  EXPECT_EQ(settled.scale_down_events, s.scale_down_events);
  EXPECT_EQ(settled.current_workers, 1);
}

TEST(InferenceServer, AutoscalerLatencySignalDoesNotPinIdlePool) {
  SmallModel& m = small_model();
  ManualClock clock;
  // The latency EWMA only moves when batches complete, so after traffic
  // stops it freezes at the last burst's (high) value. The signal must be
  // gated on a non-empty queue: an idle pool holding a stale EWMA above
  // up_latency_us has to shrink back to min_workers, not stay scaled up.
  ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/1, 0us, /*capacity=*/1024,
                                   QueuePolicy::kBlock);
  so.clock = &clock;
  so.autoscaler.enabled = true;
  so.autoscaler.min_workers = 1;
  so.autoscaler.max_workers = 3;
  so.autoscaler.interval = 1ms;
  so.autoscaler.up_queue_per_worker = 1e9;  // queue-depth signal never trips
  so.autoscaler.up_latency_us = 1.0;        // any aged completion trips this
  so.autoscaler.up_consecutive = 2;
  so.autoscaler.down_consecutive = 3;
  so.autoscaler.cooldown = 0ms;
  InferenceServer server(so);
  server.register_model("m", m.session.network());

  // Age the backlog in virtual time: requests queue behind the busy pool
  // while the clock advances between submits, so completions record
  // milliseconds of virtual end-to-end latency and push the EWMA far above
  // the 1 us threshold while the queue is non-empty.
  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(server.submit("m", m.images[static_cast<std::size_t>(i) % m.images.size()]));
    clock.advance(1ms);
  }
  ASSERT_TRUE(eventually([&] {
    if (server.worker_count() == 3) return true;
    clock.advance(1ms);  // keep evaluations coming while the burst drains
    return false;
  })) << "latency signal never grew the pool while requests were queued";
  server.drain();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    EXPECT_EQ(futs[i].get().data, m.refs[i % m.refs.size()].data);
  }
  ASSERT_TRUE(eventually([&] {
    if (server.worker_count() == 1) return true;
    clock.advance(1ms);
    return false;
  })) << "stale latency EWMA pinned the idle pool above min_workers";
}

// --- executor-cache eviction -------------------------------------------------

TEST(InferenceServer, AutoscalerEvictsParkedExecutorsAndRewarmsBitIdentical) {
  SmallModel& m = small_model();
  ManualClock clock;
  ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/1, 0us, /*capacity=*/1024,
                                   QueuePolicy::kBlock);
  so.clock = &clock;
  so.autoscaler.enabled = true;
  so.autoscaler.min_workers = 1;
  so.autoscaler.max_workers = 2;
  so.autoscaler.interval = 1ms;
  so.autoscaler.up_queue_per_worker = 1.0;
  so.autoscaler.up_consecutive = 1;
  so.autoscaler.down_consecutive = 1;
  so.autoscaler.cooldown = 0ms;
  so.autoscaler.evict_after = 3ms;
  InferenceServer server(so);
  server.register_model("m", m.session.network());

  // Phase 1: backlog scales to two workers; both serve and build executors.
  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(server.submit("m", m.images[static_cast<std::size_t>(i) % m.images.size()]));
  }
  ASSERT_TRUE(eventually([&] {
    if (server.model_stats("m").affinity_misses >= 2) return true;  // both built
    clock.advance(1ms);
    return false;
  })) << "the second worker never scaled up and served";
  server.drain();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    EXPECT_EQ(futs[i].get().data, m.refs[i % m.refs.size()].data);
  }
  const ServerStats warm = server.stats();
  EXPECT_EQ(warm.evicted_executors, 0u);
  EXPECT_GT(warm.warm_bytes, 0u);

  // Phase 2: idle evaluations shrink the pool, and once the parked worker
  // has sat past evict_after in virtual time, a later evaluation reclaims
  // its executor. The live worker's cache is never touched.
  const std::size_t warm_before = warm.warm_bytes;  // both arenas, pre-advance
  ASSERT_TRUE(eventually([&] {
    if (server.stats().evicted_executors >= 1) return true;
    clock.advance(1ms);
    return false;
  })) << "parked worker's executor was never evicted";
  const ServerStats evicted = server.stats();
  EXPECT_EQ(evicted.evicted_executors, 1u);  // the parked worker, nothing else
  EXPECT_EQ(evicted.current_workers, 1);     // eviction implies it was parked
  EXPECT_LT(evicted.warm_bytes, warm_before);
  EXPECT_GT(evicted.warm_bytes, 0u);  // the live worker keeps its arena

  // Phase 3: re-warm. New backlog scales back up; the evicted worker
  // rebuilds (one more affinity miss) and serves bit-identical logits.
  std::vector<std::future<QTensor>> futs3;
  std::size_t next = 0;
  ASSERT_TRUE(eventually([&] {
    if (server.model_stats("m").affinity_misses >= 3) return true;  // rebuilt
    futs3.push_back(server.submit("m", m.images[next % m.images.size()]));
    ++next;
    clock.advance(1ms);
    return false;
  })) << "the evicted worker never re-warmed";
  server.drain();
  for (std::size_t i = 0; i < futs3.size(); ++i) {
    EXPECT_EQ(futs3[i].get().data, m.refs[i % m.refs.size()].data)
        << "re-warmed executor diverged from the reference at request " << i;
  }
  EXPECT_GT(server.stats().warm_bytes, evicted.warm_bytes);
}

TEST(InferenceServer, WarmBytesBudgetEvictsParkedWorkersButNeverLiveOnes) {
  SmallModel& m = small_model();
  ManualClock clock;
  ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/1, 0us, /*capacity=*/1024,
                                   QueuePolicy::kBlock);
  so.clock = &clock;
  so.autoscaler.enabled = true;
  so.autoscaler.min_workers = 1;
  so.autoscaler.max_workers = 2;
  so.autoscaler.interval = 1ms;
  so.autoscaler.up_queue_per_worker = 1.0;
  so.autoscaler.up_consecutive = 1;
  so.autoscaler.down_consecutive = 1;
  so.autoscaler.cooldown = 0ms;
  so.autoscaler.max_warm_bytes = 1;  // any parked warm worker is over budget
  InferenceServer server(so);
  server.register_model("m", m.session.network());

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(server.submit("m", m.images[static_cast<std::size_t>(i) % m.images.size()]));
  }
  ASSERT_TRUE(eventually([&] {
    if (server.model_stats("m").affinity_misses >= 2) return true;
    clock.advance(1ms);
    return false;
  })) << "the second worker never scaled up and served";
  server.drain();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    EXPECT_EQ(futs[i].get().data, m.refs[i % m.refs.size()].data);
  }

  // While both workers are live the budget has no parked candidates: the
  // pool stays over budget rather than evicting a live cache.
  EXPECT_EQ(server.stats().evicted_executors, 0u);

  // The moment one worker parks, the budget reclaims its cache — but only
  // its cache: the live worker stays warm even though it alone still
  // exceeds the 1-byte budget (live caches are never reclaimed).
  ASSERT_TRUE(eventually([&] {
    if (server.stats().evicted_executors >= 1) return true;
    clock.advance(1ms);
    return false;
  })) << "budget never evicted the parked worker";
  const ServerStats s = server.stats();
  EXPECT_EQ(s.evicted_executors, 1u);
  EXPECT_GT(s.warm_bytes, 0u);
  EXPECT_EQ(s.current_workers, 1);
}

// --- execution-aware shedding ------------------------------------------------

TEST(InferenceServer, SheddingStormNeverYieldsPartialResultsAndKeepsBitIdentity) {
  SmallModel& m = small_model();
  // Real clock, real races: queue purges, in-flight layer-boundary sheds and
  // completions interleave freely (this file runs under the TSan CI job).
  // The contract: every future either carries logits bit-identical to the
  // single-threaded reference or fails with kDeadlineExpired; deadline-free
  // requests always complete; the admission ledger balances exactly.
  ServerOptions so = quick_options(/*workers=*/2, /*max_batch=*/4, /*delay=*/200us,
                                   /*capacity=*/4096, QueuePolicy::kBlock);
  InferenceServer server(so);
  server.register_model("m", m.session.network());

  struct Sub {
    std::future<QTensor> fut;
    std::size_t img;
    bool has_deadline;
  };
  std::vector<Sub> subs;
  subs.reserve(300);
  for (int i = 0; i < 300; ++i) {
    SubmitOptions opt;
    const bool with_deadline = (i % 3) != 0;
    // 1 us .. 700 us: far below the model's execution time, so deadlined
    // requests are refused at dispatch or shed at a layer boundary.
    if (with_deadline) opt.deadline = std::chrono::microseconds(1 + (i * 37) % 700);
    const std::size_t img = static_cast<std::size_t>(i) % m.images.size();
    subs.push_back({server.submit("m", m.images[img], opt), img, with_deadline});
  }
  server.drain();

  std::size_t completed = 0;
  std::size_t shed = 0;
  for (Sub& s : subs) {
    try {
      const QTensor out = s.fut.get();
      EXPECT_EQ(out.data, m.refs[s.img].data) << "completed result not bit-identical";
      ++completed;
    } catch (const ServerRejected& e) {
      EXPECT_TRUE(s.has_deadline) << "a deadline-free request was shed";
      EXPECT_EQ(e.reason(), ServerRejected::Reason::kDeadlineExpired);
      ++shed;
    }
  }
  EXPECT_EQ(completed + shed, subs.size());
  EXPECT_GE(completed, 100u);  // every deadline-free request at minimum
  const ModelStats ms = server.model_stats("m");
  EXPECT_EQ(ms.admission.accepted, subs.size());
  EXPECT_EQ(ms.admission.completed, completed);
  EXPECT_EQ(ms.admission.shed, shed);
  EXPECT_EQ(ms.deadline_expired, shed);
  EXPECT_EQ(ms.admission.failed, 0u);
}

TEST(InferenceServer, AutoscalerValidationAndFixedPoolDefaults) {
  SmallModel& m = small_model();
  const auto with_autoscaler = [](auto mutate) {
    ServerOptions so;
    so.autoscaler.enabled = true;
    mutate(so.autoscaler);
    return so;
  };
  EXPECT_THROW(InferenceServer(with_autoscaler([](AutoscalerOptions& a) { a.min_workers = 0; })),
               std::invalid_argument);
  EXPECT_THROW(InferenceServer(with_autoscaler([](AutoscalerOptions& a) {
                 a.min_workers = 3;
                 a.max_workers = 2;
               })),
               std::invalid_argument);
  EXPECT_THROW(InferenceServer(with_autoscaler(
                   [](AutoscalerOptions& a) { a.interval = std::chrono::microseconds{0}; })),
               std::invalid_argument);
  EXPECT_THROW(InferenceServer(with_autoscaler(
                   [](AutoscalerOptions& a) { a.up_queue_per_worker = 0.0; })),
               std::invalid_argument);

  // Weight is validated at registration.
  InferenceServer server(quick_options(/*workers=*/2, /*max_batch=*/4, 1ms));
  ModelConfig bad_weight;
  bad_weight.weight = 0;
  EXPECT_THROW(server.register_model("m", m.session.network(), bad_weight),
               std::invalid_argument);

  // Without the autoscaler the pool is fixed and the new stats fields are
  // inert: current == peak == workers, zero scale events.
  server.register_model("m", m.session.network());
  server.submit("m", m.images[0]).get();
  server.drain();
  const ServerStats s = server.stats();
  EXPECT_EQ(server.worker_count(), 2);
  EXPECT_EQ(s.current_workers, 2);
  EXPECT_EQ(s.peak_workers, 2);
  EXPECT_EQ(s.scale_up_events, 0u);
  EXPECT_EQ(s.scale_down_events, 0u);
}

// --- drain / shutdown --------------------------------------------------------

TEST(InferenceServer, DrainFlushesDeadlinesAndMakesEveryFutureReady) {
  SmallModel& m = small_model();
  // Deadline far in the future: without drain()'s flush these would sit in
  // the queue for 10 s.
  InferenceServer server(quick_options(/*workers=*/2, /*max_batch=*/7, 10s));
  server.register_model("m", m.session.network());

  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 20; ++i) futs.push_back(server.submit("m", m.images[i]));
  const auto t0 = std::chrono::steady_clock::now();
  server.drain();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 5s) << "drain waited for the batching deadline instead of flushing";
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready) << "future " << i;
    EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.admission.completed, 20u);
  EXPECT_EQ(s.queue_depth, 0u);
  // End-to-end latency was recorded for every completed request.
  EXPECT_EQ(s.latency.count, 20u);
  EXPECT_GT(s.latency.p50_us, 0.0);
  EXPECT_LE(s.latency.p50_us, s.latency.p95_us);
  EXPECT_LE(s.latency.p95_us, s.latency.p99_us);
}

TEST(InferenceServer, DestructorDrainsInFlightRequests) {
  SmallModel& m = small_model();
  std::vector<std::future<QTensor>> futs;
  {
    InferenceServer server(quick_options(/*workers=*/2, /*max_batch=*/5, 10s));
    server.register_model("m", m.session.network());
    for (int i = 0; i < 17; ++i) futs.push_back(server.submit("m", m.images[i]));
    // Destructor runs with queued and in-flight requests outstanding.
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready)
        << "future " << i << " not fulfilled by shutdown";
    EXPECT_EQ(futs[i].get().data, m.refs[i].data);
  }
}

TEST(InferenceServer, ShutdownRejectsNewWorkAndIsIdempotent) {
  SmallModel& m = small_model();
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/2, 1ms));
  server.register_model("m", m.session.network());
  server.submit("m", m.images[0]).get();
  server.shutdown();
  server.shutdown();  // idempotent

  std::future<QTensor> f = server.submit("m", m.images[1]);
  try {
    f.get();
    FAIL() << "submit after shutdown was not rejected";
  } catch (const ServerRejected& e) {
    EXPECT_EQ(e.reason(), ServerRejected::Reason::kShutdown);
  }
  EXPECT_THROW(server.register_model("late", m.session.network()), std::invalid_argument);
  EXPECT_EQ(server.model_stats("m").admission.rejected, 1u);
}

// --- error isolation & misuse ------------------------------------------------

TEST(InferenceServer, BadRequestFailsAloneWithoutPoisoningItsBatch) {
  SmallModel& m = small_model();
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/8, 50ms));
  server.register_model("m", m.session.network());

  std::future<QTensor> good0 = server.submit("m", m.images[0]);
  std::future<QTensor> bad = server.submit("m", Tensor({5, 16, 16}, 0.1f));  // wrong channels
  std::future<QTensor> good1 = server.submit("m", m.images[1]);
  server.drain();

  EXPECT_EQ(good0.get().data, m.refs[0].data);
  EXPECT_THROW(bad.get(), std::invalid_argument);
  EXPECT_EQ(good1.get().data, m.refs[1].data);
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.completed, 2u);
  EXPECT_EQ(s.admission.failed, 1u);
  // The server keeps serving after a failed request.
  std::future<QTensor> again = server.submit("m", m.images[2]);
  EXPECT_EQ(again.get().data, m.refs[2].data);
}

TEST(InferenceServer, UnknownModelAndDuplicateRegistrationThrow) {
  SmallModel& m = small_model();
  InferenceServer server(quick_options(/*workers=*/1, /*max_batch=*/2, 1ms));
  server.register_model("m", m.session.network());
  EXPECT_THROW(server.submit("nope", m.images[0]), std::invalid_argument);
  EXPECT_THROW(server.register_model("m", m.session.network()), std::invalid_argument);
  EXPECT_THROW(server.model_stats("nope"), std::invalid_argument);
  EXPECT_THROW(InferenceServer(quick_options(0, 2, 1ms)), std::invalid_argument);
  EXPECT_THROW(InferenceServer(quick_options(1, 0, 1ms)), std::invalid_argument);
}

// --- batched dispatch --------------------------------------------------------

TEST(InferenceServer, BatchedAndPerImageDispatchBitIdentical) {
  // The one-call batched dispatch (default) must produce byte-identical
  // logits to the per-request dispatch loop it replaced; batched_execution
  // is the ablation toggle between them.
  SmallModel& m = small_model();
  for (bool batched : {true, false}) {
    ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/4, 50ms);
    so.batched_execution = batched;
    InferenceServer server(so);
    server.register_model("m", m.session.network());
    std::vector<std::future<QTensor>> futs;
    for (int i = 0; i < 8; ++i) futs.push_back(server.submit("m", m.images[i]));
    server.drain();
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(futs[static_cast<std::size_t>(i)].get().data, m.refs[static_cast<std::size_t>(i)].data)
          << "batched=" << batched << " image " << i;
    }
    const ServerStats s = server.stats();
    EXPECT_EQ(s.admission.completed, 8u);
    EXPECT_EQ(s.admission.failed, 0u);
  }
}

TEST(InferenceServer, BadShapeRejectedBeforeBatchingUnderBatchedDispatch) {
  // Pre-dispatch validation: with batched execution on, a wrong-shape
  // request must fail its own future (same error as the engine's) while its
  // batch neighbours ride the single batched executor call.
  SmallModel& m = small_model();
  ServerOptions so = quick_options(/*workers=*/1, /*max_batch=*/8, 50ms);
  so.batched_execution = true;
  InferenceServer server(so);
  server.register_model("m", m.session.network());

  std::future<QTensor> good0 = server.submit("m", m.images[0]);
  std::future<QTensor> bad_shape = server.submit("m", Tensor({5, 16, 16}, 0.1f));
  std::future<QTensor> bad_rank = server.submit("m", Tensor({2, 3, 16, 16}, 0.1f));
  std::future<QTensor> good1 = server.submit("m", m.images[1]);
  server.drain();

  EXPECT_EQ(good0.get().data, m.refs[0].data);
  EXPECT_THROW(bad_shape.get(), std::invalid_argument);
  EXPECT_THROW(bad_rank.get(), std::invalid_argument);
  EXPECT_EQ(good1.get().data, m.refs[1].data);
  const ModelStats s = server.model_stats("m");
  EXPECT_EQ(s.admission.completed, 2u);
  EXPECT_EQ(s.admission.failed, 2u);
  // Only the two valid requests executed, so only they record exec samples.
  EXPECT_EQ(s.exec_latency.count, 2u);
}

TEST(InferenceServer, ExecLatencySeparatesExecutorTimeFromQueueing) {
  SmallModel& m = small_model();
  InferenceServer server(quick_options(/*workers=*/2, /*max_batch=*/4, 300us));
  server.register_model("m", m.session.network());
  std::vector<std::future<QTensor>> futs;
  for (int i = 0; i < 16; ++i) futs.push_back(server.submit("m", m.images[i % 8]));
  server.drain();
  for (auto& f : futs) f.get();

  const ServerStats s = server.stats();
  EXPECT_EQ(s.exec_latency.count, 16u);
  EXPECT_GT(s.exec_latency.mean_us, 0.0);
  // Executor time excludes queueing and batching delay, so it can never
  // exceed the end-to-end mean over the same sample set.
  EXPECT_LE(s.exec_latency.mean_us, s.latency.mean_us);
  ASSERT_EQ(s.models.size(), 1u);
  EXPECT_EQ(s.models[0].exec_latency.count, 16u);
  EXPECT_LE(s.models[0].exec_latency.mean_us, s.models[0].latency.mean_us);
  EXPECT_EQ(server.model_stats("m").exec_latency.count, 16u);

  server.reset_stats();
  const ServerStats z = server.stats();
  EXPECT_EQ(z.exec_latency.count, 0u);
  EXPECT_EQ(z.models[0].exec_latency.count, 0u);
}

// --- facade ------------------------------------------------------------------

TEST(ServerFacade, RegistersSessionsByNameAndServes) {
  SmallModel& m = small_model();
  // TinyConv is a Quickdraw model in the paper, but the builder takes its
  // channel count from the options; reuse the CIFAR-shaped options so both
  // registered models share one input shape.
  bswp::Session tiny = compile_session(models::paper_models()[0], SmallModel::small_opts(), 21);

  ServerOptions so = quick_options(/*workers=*/2, /*max_batch=*/4, 500us);
  bswp::Server server(so);
  server.add("resnet", m.session).add("tiny", tiny);
  EXPECT_EQ(server.worker_count(), 2);

  std::future<QTensor> fr = server.submit("resnet", m.images[0]);
  std::future<QTensor> ft = server.submit("tiny", m.images[0]);
  EXPECT_EQ(fr.get().data, m.refs[0].data);
  EXPECT_EQ(ft.get().data, tiny.run(m.images[0]).data);
  server.drain();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.admission.completed, 2u);
  ASSERT_EQ(s.models.size(), 2u);
  EXPECT_EQ(server.model_stats("tiny").admission.completed, 1u);

  // reset_stats zeroes counters and latency windows; serving continues.
  server.reset_stats();
  const ServerStats zeroed = server.stats();
  EXPECT_EQ(zeroed.admission.accepted, 0u);
  EXPECT_EQ(zeroed.admission.completed, 0u);
  EXPECT_EQ(zeroed.batches, 0u);
  EXPECT_EQ(zeroed.latency.count, 0u);
  EXPECT_EQ(server.submit("resnet", m.images[1]).get().data, m.refs[1].data);
  server.drain();
  EXPECT_EQ(server.stats().admission.completed, 1u);
  server.shutdown();
}

TEST(ServerFacade, PriorityClassAndWeightedConfigRoundTrip) {
  SmallModel& m = small_model();
  ServerOptions so = quick_options(/*workers=*/2, /*max_batch=*/4, 500us);
  bswp::Server server(so);
  ModelConfig cfg{so.batching, so.queue, /*weight=*/4};
  server.add("resnet", m.session, cfg);

  std::future<QTensor> f = server.submit("resnet", m.images[0], RequestClass::kHigh);
  EXPECT_EQ(f.get().data, m.refs[0].data);
  server.drain();
  const ModelStats s = server.model_stats("resnet");
  EXPECT_EQ(s.weight, 4);
  EXPECT_EQ(s.admission.completed, 1u);
  EXPECT_DOUBLE_EQ(s.dispatch_share, 1.0);  // only model registered
  EXPECT_EQ(s.affinity_hits + s.affinity_misses, s.batches);
  EXPECT_EQ(server.stats().current_workers, server.worker_count());
}

}  // namespace
}  // namespace bswp::runtime
