// Session-serving tests: the token LM zoo entry (graph shape, 16-bit head,
// embedding/decode helpers, rollout dataset), greedy-decode determinism
// pinned against a golden token fixture and across runs / worker counts /
// scalar-vs-SIMD lanes / warm-vs-cold serving modes, session lifecycle
// (open/close/TTL expiry/max_sessions), concurrent session isolation,
// mid-generation close and shutdown semantics, per-token deadline
// miss-and-retry, session-affinity accounting, and the bswp::SessionServer
// facade stats rollup. The determinism tests are the serving contract of
// docs/sessions.md; this suite also runs under the TSan CI job.
//
// Golden fixture: tests/golden/tokens.txt. Regenerate after an intentional
// numerics change with  BSWP_UPDATE_GOLDEN=1 ./tests/test_sessions
#include "runtime/sessions/session_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/bswp.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "models/zoo.h"
#include "quant/calibrate.h"
#include "runtime/clock.h"
#include "runtime/pipeline.h"
#include "runtime/server/inference_server.h"

namespace bswp::runtime {
namespace {

using namespace std::chrono_literals;

// --- environment -------------------------------------------------------------

models::TokenLmOptions tiny_lm(int vocab = 32) {
  models::TokenLmOptions o;
  o.vocab = vocab;
  o.embed_dim = 8;
  o.state_dim = 16;
  o.hidden_dim = 16;
  return o;
}

/// Compile a token LM deterministically: fixed-seed weights plus a
/// fixed-seed rollout calibration (the LM's own greedy trajectories are the
/// calibration distribution — see models::TokenLmRollout).
bswp::Session compile_lm(const models::TokenLmOptions& lm, std::uint64_t seed,
                         HostLaneSelect lanes = HostLaneSelect::kCostModel) {
  nn::Graph g = models::build_token_lm(lm);
  Rng rng(seed);
  g.init_weights(rng);
  models::TokenLmRollout cal_ds(g, lm, /*sequences=*/4, /*steps=*/8, seed + 1);
  quant::CalibrateOptions co;
  co.num_samples = cal_ds.size();
  co.batch_size = 8;
  quant::CalibrationResult cal = quant::calibrate(g, cal_ds, co);
  CompileOptions opts;
  opts.host_lanes = lanes;
  return bswp::Session(compile(g, nullptr, cal, opts));
}

/// One shared compiled LM for the tests that only need *a* deterministic
/// model (compiling per test would just slow the suite down).
struct LmFixture {
  models::TokenLmOptions lm;
  bswp::Session session;
  LmFixture() : lm(tiny_lm()), session(compile_lm(tiny_lm(), 7)) {}
};

LmFixture& lm_fixture() {
  static LmFixture f;
  return f;
}

/// Serve one generation on a fresh SessionServer and return its tokens.
std::vector<int> generate_tokens(const bswp::Session& session, const models::TokenLmOptions& lm,
                                 int workers, const std::vector<int>& prompt, int max_tokens,
                                 bool warm = true) {
  ServerOptions so;
  so.workers = workers;
  SessionManagerOptions mo;
  mo.warm_state = warm;
  bswp::SessionServer srv(so, mo);
  srv.add("lm", session, lm);
  const SessionId id = srv.open("lm");
  GenerationResult r = srv.generate(id, prompt, max_tokens);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tokens.size(), static_cast<std::size_t>(max_tokens));
  return r.tokens;
}

/// ModelConfig whose batching window makes every decode step linger
/// `delay` in the queue (max_batch > 1 so a lone step is never "ready"
/// early) — the knob behind the deadline and mid-generation tests.
ModelConfig slow_config(std::chrono::microseconds delay) {
  ModelConfig c;
  c.batching.max_batch = 8;
  c.batching.max_delay = delay;
  return c;
}

// --- token LM zoo entry ------------------------------------------------------

TEST(TokenLm, StepOutputPacksLogitsAndStateAt16Bit) {
  LmFixture& f = lm_fixture();
  const Tensor x = models::token_lm_input(f.lm, /*token=*/3, /*state=*/nullptr);
  ASSERT_EQ(x.size(), static_cast<std::size_t>(f.lm.embed_dim + f.lm.state_dim));

  const QTensor out = f.session.run(x);
  // One output tensor: vocab logits followed by the next recurrent state.
  EXPECT_EQ(out.size(), static_cast<std::size_t>(f.lm.vocab + f.lm.state_dim));
  // The unfused lm_head lands on the 16-bit signed classifier rule — the
  // precision contract the argmax and the state splice both rely on.
  EXPECT_EQ(out.bits, 16);
  EXPECT_TRUE(out.is_signed);

  // Same input, same integers.
  const QTensor again = f.session.run(x);
  EXPECT_EQ(out.data, again.data);
}

TEST(TokenLm, EmbeddingIsDeterministicBoundedAndPerToken) {
  const models::TokenLmOptions lm = tiny_lm();
  const std::vector<float> e3 = models::token_embedding(lm, 3);
  ASSERT_EQ(e3.size(), static_cast<std::size_t>(lm.embed_dim));
  EXPECT_EQ(e3, models::token_embedding(lm, 3));
  EXPECT_NE(e3, models::token_embedding(lm, 4));
  for (float v : e3) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(TokenLm, InputLayoutZeroStateAndClipping) {
  const models::TokenLmOptions lm = tiny_lm();
  const std::vector<float> emb = models::token_embedding(lm, 5);

  // No state (fresh session): the state slice is zero.
  const Tensor fresh = models::token_lm_input(lm, 5, nullptr);
  for (int i = 0; i < lm.embed_dim; ++i) {
    EXPECT_EQ(fresh.data()[i], emb[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < lm.state_dim; ++i) {
    EXPECT_EQ(fresh.data()[lm.embed_dim + i], 0.0f);
  }

  // Out-of-range state entries clamp to ±state_clip before entering the
  // graph (the signed int8 input quant would otherwise saturate silently).
  std::vector<float> wild(static_cast<std::size_t>(lm.state_dim), 100.0f);
  wild[0] = -100.0f;
  const Tensor clipped = models::token_lm_input(lm, 5, &wild);
  EXPECT_EQ(clipped.data()[lm.embed_dim + 0], -lm.state_clip);
  for (int i = 1; i < lm.state_dim; ++i) {
    EXPECT_EQ(clipped.data()[lm.embed_dim + i], lm.state_clip);
  }
}

TEST(TokenLm, DecodeIsArgmaxOverLogitsPlusClippedStateSplice) {
  LmFixture& f = lm_fixture();
  const QTensor out = f.session.run(models::token_lm_input(f.lm, 1, nullptr));

  std::vector<float> next;
  const int token = models::token_lm_decode(f.lm, out, &next);
  ASSERT_GE(token, 0);
  ASSERT_LT(token, f.lm.vocab);

  // Greedy pick over the raw int16 logits, lowest index on ties.
  for (int i = 0; i < f.lm.vocab; ++i) {
    EXPECT_LE(out.data[static_cast<std::size_t>(i)], out.data[static_cast<std::size_t>(token)]);
    if (out.data[static_cast<std::size_t>(i)] == out.data[static_cast<std::size_t>(token)]) {
      EXPECT_GE(i, token);
    }
  }
  // State slice: dequantized tail, clipped into the input range.
  ASSERT_EQ(next.size(), static_cast<std::size_t>(f.lm.state_dim));
  for (int h = 0; h < f.lm.state_dim; ++h) {
    EXPECT_LE(std::abs(next[static_cast<std::size_t>(h)]), f.lm.state_clip);
  }
}

TEST(TokenLm, RolloutDatasetIsDeterministicAndWellFormed) {
  const models::TokenLmOptions lm = tiny_lm();
  nn::Graph g = models::build_token_lm(lm);
  Rng rng(21);
  g.init_weights(rng);

  models::TokenLmRollout a(g, lm, /*sequences=*/3, /*steps=*/5, /*seed=*/9);
  models::TokenLmRollout b(g, lm, 3, 5, 9);
  ASSERT_EQ(a.size(), 15);
  EXPECT_EQ(a.channels(), lm.embed_dim + lm.state_dim);
  EXPECT_EQ(a.num_classes(), lm.vocab);
  EXPECT_EQ(a.height() * a.width(), 1);

  std::vector<float> xa(static_cast<std::size_t>(a.channels()));
  std::vector<float> xb(xa.size());
  for (int i = 0; i < a.size(); ++i) {
    const int la = a.sample(i, xa.data());
    const int lb = b.sample(i, xb.data());
    EXPECT_EQ(la, lb);
    EXPECT_EQ(xa, xb);
    EXPECT_GE(la, 0);
    EXPECT_LT(la, lm.vocab);
  }
}

// --- golden token fixture ----------------------------------------------------

using GoldenMap = std::map<std::string, std::vector<int>>;

std::string golden_path() { return std::string(BSWP_SOURCE_DIR) + "/tests/golden/tokens.txt"; }

/// The pinned decode trajectories: two LM geometries, served end-to-end
/// through the SessionServer on a 2-worker server.
GoldenMap compute_current() {
  GoldenMap out;
  out["lm_v32_seed7_p123"] =
      generate_tokens(lm_fixture().session, lm_fixture().lm, /*workers=*/2, {1, 2, 3}, 32);

  models::TokenLmOptions small = tiny_lm(/*vocab=*/24);
  small.state_dim = 8;
  small.hidden_dim = 12;
  const bswp::Session s = compile_lm(small, 13);
  out["lm_v24_seed13_p05"] = generate_tokens(s, small, /*workers=*/2, {0, 5}, 24);
  return out;
}

GoldenMap load_fixture(const std::string& path) {
  GoldenMap out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    std::vector<int> vals;
    int v = 0;
    while (ss >> v) vals.push_back(v);
    out[key] = std::move(vals);
  }
  return out;
}

void save_fixture(const GoldenMap& m) {
  std::ofstream outf(golden_path());
  ASSERT_TRUE(outf.good()) << "cannot write " << golden_path();
  outf << "# Golden greedy-decode token sequences (tests/test_sessions.cpp).\n";
  outf << "# Key: lm_v<vocab>_seed<weight seed>_p<prompt tokens>; values are the\n";
  outf << "# emitted token ids, bit-identical across runs / worker counts /\n";
  outf << "# scalar-vs-SIMD lanes / warm-vs-cold serving by the determinism\n";
  outf << "# contract. Regenerate after an intentional numerics change with:\n";
  outf << "#   BSWP_UPDATE_GOLDEN=1 ./tests/test_sessions\n";
  for (const auto& [key, vals] : m) {
    outf << key;
    for (int v : vals) outf << ' ' << v;
    outf << '\n';
  }
}

TEST(Sessions, GoldenTokenFixture) {
  const GoldenMap current = compute_current();

  if (std::getenv("BSWP_UPDATE_GOLDEN") != nullptr) {
    save_fixture(current);
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  const GoldenMap golden = load_fixture(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing fixture " << golden_path()
                               << " — run BSWP_UPDATE_GOLDEN=1 ./tests/test_sessions";
  ASSERT_EQ(golden.size(), current.size());
  for (const auto& [key, vals] : golden) {
    ASSERT_TRUE(current.count(key)) << "fixture key " << key << " not computed";
    EXPECT_EQ(current.at(key), vals) << "token trajectory drifted for " << key;
  }
}

// --- decode determinism ------------------------------------------------------

TEST(Sessions, BitIdenticalAcrossRunsAndWorkerCounts) {
  LmFixture& f = lm_fixture();
  const std::vector<int> prompt = {4, 9, 2};
  const std::vector<int> ref = generate_tokens(f.session, f.lm, /*workers=*/1, prompt, 24);
  ASSERT_EQ(ref.size(), 24u);
  EXPECT_EQ(generate_tokens(f.session, f.lm, 2, prompt, 24), ref);
  EXPECT_EQ(generate_tokens(f.session, f.lm, 2, prompt, 24), ref);  // repeat run
  EXPECT_EQ(generate_tokens(f.session, f.lm, 4, prompt, 24), ref);
}

TEST(Sessions, BitIdenticalAcrossScalarAndSimdLanes) {
  const models::TokenLmOptions lm = tiny_lm();
  const bswp::Session scalar = compile_lm(lm, 7, HostLaneSelect::kScalar);
  const bswp::Session simd = compile_lm(lm, 7, HostLaneSelect::kSimd);

  const std::vector<int> prompt = {1, 2, 3};
  const std::vector<int> ref = generate_tokens(scalar, lm, 2, prompt, 24);
  EXPECT_EQ(generate_tokens(simd, lm, 2, prompt, 24), ref);
  // The shared fixture compiles with kCostModel lanes — same trajectory.
  EXPECT_EQ(generate_tokens(lm_fixture().session, lm_fixture().lm, 2, prompt, 24), ref);
}

TEST(Sessions, WarmAndColdServingEmitIdenticalTokens) {
  LmFixture& f = lm_fixture();
  const std::vector<int> prompt = {6, 1};
  const std::vector<int> warm = generate_tokens(f.session, f.lm, 2, prompt, 16, /*warm=*/true);
  const std::vector<int> cold = generate_tokens(f.session, f.lm, 2, prompt, 16, /*warm=*/false);
  EXPECT_EQ(warm, cold);
}

TEST(Sessions, EmptyPromptContinuesTheSequenceExactly) {
  LmFixture& f = lm_fixture();
  const std::vector<int> prompt = {3, 8};
  const std::vector<int> full = generate_tokens(f.session, f.lm, 2, prompt, 16);

  ServerOptions so;
  so.workers = 2;
  bswp::SessionServer srv(so);
  srv.add("lm", f.session, f.lm);

  // Split generation: 8 tokens, then 8 more from an empty prompt.
  const SessionId split = srv.open("lm");
  std::vector<int> tokens = srv.generate(split, prompt, 8).tokens;
  const std::vector<int> tail = srv.generate(split, {}, 8).tokens;
  tokens.insert(tokens.end(), tail.begin(), tail.end());
  EXPECT_EQ(tokens, full);

  // Prefill-only call (max_tokens = 0) followed by a continuation is the
  // same trajectory again.
  const SessionId prefill = srv.open("lm");
  EXPECT_TRUE(srv.generate(prefill, prompt, 0).tokens.empty());
  EXPECT_EQ(srv.generate(prefill, {}, 16).tokens, full);

  // A fresh session has no context for an empty prompt to continue.
  const SessionId fresh = srv.open("lm");
  EXPECT_THROW(srv.generate(fresh, {}, 4), std::invalid_argument);
}

/// Two generate() calls with non-empty prompts on one session; returns the
/// concatenated token stream. Exercises the warm continuation path where the
/// previous generation's last emitted token is still unfed.
std::vector<int> two_call_tokens(bool warm) {
  LmFixture& f = lm_fixture();
  ServerOptions so;
  so.workers = 2;
  SessionManagerOptions mo;
  mo.warm_state = warm;
  bswp::SessionServer srv(so, mo);
  srv.add("lm", f.session, f.lm);
  const SessionId id = srv.open("lm");
  std::vector<int> tokens = srv.generate(id, {6, 1}, 8).tokens;
  const std::vector<int> more = srv.generate(id, {4, 9}, 8).tokens;
  tokens.insert(tokens.end(), more.begin(), more.end());
  return tokens;
}

TEST(Sessions, PromptedContinuationFeedsTheUnfedTail) {
  LmFixture& f = lm_fixture();
  // A prompt split across calls walks the single-call trajectory: after the
  // prefill-only first call, history's last token is still unfed, and the
  // second call must feed it ahead of its own prompt.
  const std::vector<int> full = generate_tokens(f.session, f.lm, 2, {4, 9, 2}, 24);
  ServerOptions so;
  so.workers = 2;
  bswp::SessionServer srv(so);
  srv.add("lm", f.session, f.lm);
  const SessionId id = srv.open("lm");
  EXPECT_TRUE(srv.generate(id, {4}, 0).tokens.empty());
  EXPECT_EQ(srv.generate(id, {9, 2}, 24).tokens, full);

  // Prompted continuation after emitted tokens: warm serving must feed the
  // previous generation's last emission before the new prompt, exactly as
  // cold replay does — the cross-call half of the warm/cold contract.
  EXPECT_EQ(two_call_tokens(/*warm=*/true), two_call_tokens(/*warm=*/false));
}

TEST(Sessions, ConcurrentSessionsStayIsolatedAndDeterministic) {
  LmFixture& f = lm_fixture();
  constexpr int kSessions = 6;

  // Per-prompt references, each from a private single-session server.
  std::vector<std::vector<int>> prompts;
  std::vector<std::vector<int>> refs;
  for (int i = 0; i < kSessions; ++i) {
    prompts.push_back({i % f.lm.vocab, (3 * i + 1) % f.lm.vocab});
    refs.push_back(generate_tokens(f.session, f.lm, 2, prompts.back(), 12));
  }

  // All six interleaved on one 3-worker server: isolation means every
  // session still walks its own reference trajectory bit-for-bit.
  ServerOptions so;
  so.workers = 3;
  bswp::SessionServer srv(so);
  srv.add("lm", f.session, f.lm);
  std::vector<SessionId> ids;
  std::vector<std::future<GenerationResult>> futs;
  for (int i = 0; i < kSessions; ++i) ids.push_back(srv.open("lm"));
  for (int i = 0; i < kSessions; ++i) {
    futs.push_back(srv.generate_async(ids[static_cast<std::size_t>(i)],
                                      prompts[static_cast<std::size_t>(i)], 12));
  }
  for (int i = 0; i < kSessions; ++i) {
    GenerationResult r = futs[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.tokens, refs[static_cast<std::size_t>(i)]) << "session " << i << " diverged";
  }
  EXPECT_EQ(srv.stats().sessions.tokens, static_cast<std::uint64_t>(kSessions) * 12u);
}

// --- streaming callback ------------------------------------------------------

TEST(Sessions, CallbackStreamsEveryTokenInOrder) {
  LmFixture& f = lm_fixture();
  bswp::SessionServer srv;
  srv.add("lm", f.session, f.lm);
  const SessionId id = srv.open("lm");

  std::vector<TokenEvent> events;
  GenerationResult r = srv.generate(id, {2, 7}, 10,
                                    [&](const TokenEvent& e) { events.push_back(e); });
  ASSERT_EQ(r.tokens.size(), 10u);
  ASSERT_EQ(events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].token, r.tokens[static_cast<std::size_t>(i)]);
    EXPECT_GT(events[static_cast<std::size_t>(i)].latency_us, 0.0);
  }
  EXPECT_EQ(r.token_latency.count, 10u);
  EXPECT_GT(r.tokens_per_s, 0.0);
}

// --- lifecycle ---------------------------------------------------------------

TEST(Sessions, LifecycleCountersAndLimits) {
  LmFixture& f = lm_fixture();
  SessionManagerOptions mo;
  mo.max_sessions = 2;
  bswp::SessionServer srv(ServerOptions{}, mo);
  srv.add("lm", f.session, f.lm);

  const SessionId a = srv.open("lm");
  const SessionId b = srv.open("lm");
  EXPECT_NE(a, b);
  EXPECT_EQ(srv.active_sessions(), 2u);
  EXPECT_THROW(srv.open("lm"), std::invalid_argument);  // max_sessions

  srv.close(a);
  EXPECT_EQ(srv.active_sessions(), 1u);
  const SessionId c = srv.open("lm");  // freed slot is reusable
  EXPECT_NE(c, a);

  EXPECT_THROW(srv.close(a), std::invalid_argument);            // already closed
  EXPECT_THROW(srv.session_stats(a), std::invalid_argument);    // unknown id
  EXPECT_THROW(srv.generate(a, {1}, 4), std::invalid_argument); // unknown id
  EXPECT_THROW(srv.open("nope"), std::invalid_argument);        // unknown LM

  const SessionServingStats s = srv.stats().sessions;
  EXPECT_EQ(s.opened, 3u);
  EXPECT_EQ(s.closed, 1u);
  EXPECT_EQ(s.active_sessions, 2u);
  EXPECT_EQ(s.peak_sessions, 2u);
}

TEST(Sessions, GenerateValidatesItsArguments) {
  LmFixture& f = lm_fixture();
  bswp::SessionServer srv;
  srv.add("lm", f.session, f.lm);
  const SessionId id = srv.open("lm");
  EXPECT_THROW(srv.generate(id, {1}, -1), std::invalid_argument);
  EXPECT_THROW(srv.generate(id, {f.lm.vocab}, 4), std::invalid_argument);  // token oob
  EXPECT_THROW(srv.generate(id, {-1}, 4), std::invalid_argument);
  // The failed calls left the session usable.
  EXPECT_EQ(srv.generate(id, {1}, 4).tokens.size(), 4u);
}

TEST(Sessions, RegisterLmValidation) {
  InferenceServer server{ServerOptions{}};
  server.register_model("lm", lm_fixture().session.network());
  SessionManager mgr(server);
  EXPECT_THROW(mgr.register_lm("ghost", tiny_lm()), std::invalid_argument);
  mgr.register_lm("lm", tiny_lm());
  EXPECT_THROW(mgr.register_lm("lm", tiny_lm()), std::invalid_argument);  // dup
  EXPECT_THROW(mgr.open_session("ghost"), std::invalid_argument);
}

TEST(Sessions, IdleSessionsExpireAfterTtl) {
  LmFixture& f = lm_fixture();
  // Idle age is measured on the injected clock, so the TTL threshold is
  // asserted exactly — just under stays live, just past expires, no sleeps.
  ManualClock clock;
  SessionManagerOptions mo;
  mo.session_ttl = 5ms;
  mo.clock = &clock;
  bswp::SessionServer srv(ServerOptions{}, mo);
  srv.add("lm", f.session, f.lm);
  srv.open("lm");
  srv.open("lm");
  EXPECT_EQ(srv.expire_idle(), 0);  // freshly opened: zero idle time
  clock.advance(4ms);
  EXPECT_EQ(srv.expire_idle(), 0);  // under the TTL: still live
  clock.advance(2ms);               // 6 ms idle, past the 5 ms TTL
  EXPECT_EQ(srv.expire_idle(), 2);
  EXPECT_EQ(srv.active_sessions(), 0u);
  EXPECT_EQ(srv.stats().sessions.expired, 2u);

  // ttl = 0 disables expiry entirely, no matter how long sessions idle.
  SessionManagerOptions keep_opts;
  keep_opts.clock = &clock;
  bswp::SessionServer keep(ServerOptions{}, keep_opts);
  keep.add("lm", f.session, f.lm);
  keep.open("lm");
  clock.advance(std::chrono::hours(1));
  EXPECT_EQ(keep.expire_idle(), 0);
  EXPECT_EQ(keep.active_sessions(), 1u);
}

// --- mid-generation close / shutdown -----------------------------------------

/// Start a slow generation (5 ms batching window per step) and unblock the
/// caller once the first token has streamed.
std::future<GenerationResult> start_slow_generation(bswp::SessionServer& srv, SessionId id,
                                                    int max_tokens,
                                                    std::future<void>* first_token) {
  auto gate = std::make_shared<std::promise<void>>();
  auto fired = std::make_shared<std::atomic<bool>>(false);
  *first_token = gate->get_future();
  return srv.generate_async(id, {1}, max_tokens, [gate, fired](const TokenEvent&) {
    if (!fired->exchange(true)) gate->set_value();
  });
}

TEST(Sessions, CloseMidGenerationStopsAtTokenBoundary) {
  LmFixture& f = lm_fixture();
  bswp::SessionServer srv;
  srv.add("lm", f.session, f.lm, slow_config(5ms));
  const SessionId id = srv.open("lm");

  std::future<void> first;
  std::future<GenerationResult> fut = start_slow_generation(srv, id, 100000, &first);
  ASSERT_EQ(first.wait_for(10s), std::future_status::ready);

  // A second generation on the same session is refused while one runs.
  EXPECT_THROW(srv.generate(id, {1}, 4), std::invalid_argument);

  srv.close(id);
  GenerationResult r = fut.get();  // stops at the next token boundary
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.tokens.size(), 1u);
  EXPECT_LT(r.tokens.size(), 100000u);
  EXPECT_EQ(srv.active_sessions(), 0u);  // deferred close finalized
  EXPECT_EQ(srv.stats().sessions.cancelled, 1u);
}

TEST(Sessions, CallbackThrowAfterCloseStillFinalizesTheClose) {
  LmFixture& f = lm_fixture();
  bswp::SessionServer srv;
  srv.add("lm", f.session, f.lm);
  const SessionId id = srv.open("lm");

  // close() lands mid-generation (deferred), then the callback throws: the
  // unwind path must still finalize the close, or the record and its sticky
  // affinity entry would linger as an unusable zombie.
  EXPECT_THROW(srv.generate(id, {1}, 8,
                            [&](const TokenEvent&) {
                              srv.close(id);
                              throw std::runtime_error("client bailed");
                            }),
               std::runtime_error);
  EXPECT_EQ(srv.active_sessions(), 0u);
  EXPECT_THROW(srv.close(id), std::invalid_argument);  // already gone
  EXPECT_EQ(srv.stats().sessions.closed, 1u);

  // Without a pending close, a throwing callback leaves the session usable.
  const SessionId again = srv.open("lm");
  EXPECT_THROW(
      srv.generate(again, {1}, 8,
                   [](const TokenEvent&) { throw std::runtime_error("client bailed"); }),
      std::runtime_error);
  EXPECT_EQ(srv.active_sessions(), 1u);
  EXPECT_EQ(srv.generate(again, {2}, 4).tokens.size(), 4u);
}

TEST(Sessions, ShutdownMidGenerationStopsCleanly) {
  LmFixture& f = lm_fixture();
  bswp::SessionServer srv;
  srv.add("lm", f.session, f.lm, slow_config(5ms));
  const SessionId id = srv.open("lm");

  std::future<void> first;
  std::future<GenerationResult> fut = start_slow_generation(srv, id, 100000, &first);
  ASSERT_EQ(first.wait_for(10s), std::future_status::ready);

  srv.shutdown();  // sessions stop at a token boundary, then the server drains
  GenerationResult r = fut.get();
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.tokens.size(), 1u);
  EXPECT_THROW(srv.open("lm"), std::invalid_argument);  // manager is down
  srv.shutdown();                                       // idempotent
}

// --- per-token deadlines -----------------------------------------------------

TEST(Server, DeadlineExpiredSurfacesThroughFutureAndStats) {
  LmFixture& f = lm_fixture();
  ManualClock clock;
  ServerOptions so;
  so.workers = 1;
  so.clock = &clock;
  InferenceServer server(so);
  // 30 ms batching window, batch of 8: on the manual clock a lone request
  // is dispatched only when this test advances past the window, and its
  // deadline expires only when the test advances past the deadline — the
  // assertion is exact, with no wall-clock margins.
  server.register_model("lm", f.session.network(), slow_config(30ms));

  SubmitOptions opt;
  opt.deadline = 1ms;
  std::future<QTensor> fut = server.submit("lm", models::token_lm_input(f.lm, 1, nullptr), opt);
  clock.advance(2ms);  // past the deadline, far short of the batching window
  try {
    fut.get();  // blocks until the scheduler's next purge pass observes it
    FAIL() << "expected ServerRejected(kDeadlineExpired)";
  } catch (const ServerRejected& e) {
    EXPECT_EQ(e.reason(), ServerRejected::Reason::kDeadlineExpired);
  }

  ServerStats s = server.stats();
  EXPECT_EQ(s.deadline_expired, 1u);
  EXPECT_EQ(s.admission.shed, 1u);  // deadline purges count as shed
  ASSERT_EQ(s.models.size(), 1u);
  EXPECT_EQ(s.models[0].deadline_expired, 1u);

  // The server is healthy: the same request without a deadline completes
  // once virtual time crosses the batching window.
  std::future<QTensor> ok = server.submit("lm", models::token_lm_input(f.lm, 1, nullptr));
  clock.advance(31ms);
  const QTensor out = ok.get();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(f.lm.vocab + f.lm.state_dim));

  // Affinity bookkeeping API: keyed submit, then forget.
  SubmitOptions keyed;
  keyed.affinity_key = 42;
  std::future<QTensor> kf = server.submit("lm", models::token_lm_input(f.lm, 2, nullptr), keyed);
  clock.advance(31ms);
  kf.get();
  server.forget_affinity("lm", 42);
  EXPECT_THROW(server.forget_affinity("ghost", 42), std::invalid_argument);
}

TEST(Server, DeadlineExpiryDoesNotWaitForSaturatedWorkers) {
  LmFixture& f = lm_fixture();
  ServerOptions so;
  so.workers = 1;
  InferenceServer server(so);
  // "bulk": one kBulk-request batch, formed only once complete (10 s
  // window), occupies the lone worker for tens of milliseconds — orders of
  // magnitude past the probe deadline below.
  constexpr std::size_t kBulk = 8192;
  ModelConfig bulk;
  bulk.batching.max_batch = static_cast<int>(kBulk);
  bulk.batching.max_delay = 10s;
  bulk.queue.capacity = kBulk;
  server.register_model("bulk", f.session.network(), bulk);
  // "probe": never batch-ready on its own — its request can only leave the
  // queue through deadline expiry.
  server.register_model("probe", f.session.network(), slow_config(10s));

  std::vector<std::future<QTensor>> bulk_futs;
  bulk_futs.reserve(kBulk);
  for (std::size_t i = 0; i < kBulk; ++i) {
    bulk_futs.push_back(server.submit(
        "bulk", models::token_lm_input(f.lm, static_cast<int>(i) % f.lm.vocab, nullptr)));
  }
  // Once the batch is handed to the worker, no worker is free until it
  // completes.
  while (server.model_stats("bulk").dispatched < kBulk) std::this_thread::yield();

  SubmitOptions opt;
  opt.deadline = 300us;
  std::future<QTensor> probe =
      server.submit("probe", models::token_lm_input(f.lm, 1, nullptr), opt);
  try {
    probe.get();
    FAIL() << "expected ServerRejected(kDeadlineExpired)";
  } catch (const ServerRejected& e) {
    EXPECT_EQ(e.reason(), ServerRejected::Reason::kDeadlineExpired);
  }
  // The purge must not have waited for a worker to free up: the saturating
  // batch is still in flight when the probe's future fails.
  EXPECT_EQ(server.model_stats("bulk").admission.completed, 0u)
      << "probe deadline expired only after the saturating batch completed";

  server.drain();
  for (auto& fut : bulk_futs) fut.get();
  EXPECT_EQ(server.model_stats("bulk").admission.completed, kBulk);
  EXPECT_EQ(server.model_stats("probe").deadline_expired, 1u);
}

TEST(Sessions, DeadlineMissIsRetriedWithoutDroppingTokens) {
  LmFixture& f = lm_fixture();
  const std::vector<int> prompt = {1, 2};
  const std::vector<int> ref = generate_tokens(f.session, f.lm, 1, prompt, 4);

  SessionManagerOptions mo;
  mo.token_deadline = 2ms;
  bswp::SessionServer srv(ServerOptions{}, mo);
  // 20 ms batching window: every step's first submit expires at 2 ms and is
  // retried without a deadline — a miss costs latency, never a token.
  srv.add("lm", f.session, f.lm, slow_config(20ms));
  const SessionId id = srv.open("lm");
  GenerationResult r = srv.generate(id, prompt, 4);

  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tokens, ref);  // the emitted sequence is deadline-independent
  // Every step missed exactly once: 1 prefill step (2-token prompt) plus 4
  // emission steps.
  EXPECT_EQ(r.deadline_misses, 5u);
  ServerStats s = srv.stats();
  EXPECT_EQ(s.sessions.deadline_misses, 5u);
  EXPECT_EQ(s.deadline_expired, 5u);
  EXPECT_EQ(srv.session_stats(id).deadline_misses, 5u);
}

TEST(Sessions, PerTokenDeadlineExpiresUnderSaturationWithoutDroppingTokens) {
  // Session-level mirror of Server.DeadlineExpiryDoesNotWaitForSaturatedWorkers:
  // a decode step's deadline expires while the lone worker is pinned by a
  // saturating bulk batch — the miss is observable before that batch
  // completes, and the generation still emits the full, bit-identical
  // token stream once the worker frees up.
  LmFixture& f = lm_fixture();
  const std::vector<int> prompt = {1, 2};
  const std::vector<int> ref = generate_tokens(f.session, f.lm, 1, prompt, 4);

  ServerOptions so;
  so.workers = 1;
  InferenceServer server(so);
  constexpr std::size_t kBulk = 4096;
  ModelConfig bulk;
  bulk.batching.max_batch = static_cast<int>(kBulk);
  bulk.batching.max_delay = 10s;
  bulk.queue.capacity = kBulk;
  server.register_model("bulk", f.session.network(), bulk);
  server.register_model("lm", f.session.network(), slow_config(5ms));

  SessionManagerOptions mo;
  mo.token_deadline = 300us;
  SessionManager mgr(server, mo);
  mgr.register_lm("lm", f.lm);

  std::vector<std::future<QTensor>> bulk_futs;
  bulk_futs.reserve(kBulk);
  for (std::size_t i = 0; i < kBulk; ++i) {
    bulk_futs.push_back(server.submit(
        "bulk", models::token_lm_input(f.lm, static_cast<int>(i) % f.lm.vocab, nullptr)));
  }
  // Once the batch is handed to the worker, no worker is free until it
  // completes.
  while (server.model_stats("bulk").dispatched < kBulk) std::this_thread::yield();

  const SessionId id = mgr.open_session("lm");
  std::future<GenerationResult> gen = mgr.generate_async(id, prompt, 4);
  // The first step's deadline must expire while the saturating batch is
  // still in flight: the purge runs on the scheduler, not on a worker.
  while (server.model_stats("lm").deadline_expired == 0) std::this_thread::yield();
  EXPECT_EQ(server.model_stats("bulk").admission.completed, 0u)
      << "step deadline expired only after the saturating batch completed";

  const GenerationResult r = gen.get();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tokens, ref);  // misses cost latency, never tokens
  EXPECT_GE(r.deadline_misses, 1u);

  server.drain();
  for (auto& fut : bulk_futs) fut.get();
  EXPECT_EQ(server.model_stats("bulk").admission.completed, kBulk);
}

TEST(Sessions, ShedMidGenerationNeverLosesOrDuplicatesTokens) {
  // A 1 us per-token deadline is unmeetable under execution-aware admission:
  // the remaining-execution estimate exceeds the slack at every scheduler
  // pass, so each step's first attempt is refused (kDeadlineExpired) before
  // a worker is wasted on it. Every miss retries deadline-free, so the
  // emitted stream must match the undeadlined reference token for token —
  // no losses, no duplicates — while the ledger records one shed per miss.
  LmFixture& f = lm_fixture();
  const std::vector<int> prompt = {3, 1};
  const std::vector<int> ref = generate_tokens(f.session, f.lm, 1, prompt, 6);

  ServerOptions so;
  so.workers = 1;
  InferenceServer server(so);
  server.register_model("lm", f.session.network());
  SessionManagerOptions mo;
  mo.token_deadline = 1us;
  SessionManager mgr(server, mo);
  mgr.register_lm("lm", f.lm);

  const SessionId id = mgr.open_session("lm");
  const GenerationResult r = mgr.generate(id, prompt, 6);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tokens, ref);
  EXPECT_GE(r.deadline_misses, 1u);

  const ModelStats ms = server.model_stats("lm");
  EXPECT_EQ(ms.deadline_expired, r.deadline_misses);
  EXPECT_EQ(ms.admission.shed, r.deadline_misses);
  EXPECT_EQ(ms.admission.failed, 0u);
  // Steps = misses (first attempts) + completions (retries): the ledger
  // balances exactly.
  EXPECT_EQ(ms.admission.accepted, ms.admission.completed + ms.admission.shed);
}

// --- affinity + stats rollup -------------------------------------------------

TEST(Sessions, StickyPlacementYieldsAffinityHits) {
  LmFixture& f = lm_fixture();
  ServerOptions so;
  so.workers = 1;
  bswp::SessionServer srv(so);
  srv.add("lm", f.session, f.lm);
  const SessionId id = srv.open("lm");
  srv.generate(id, {1, 2}, 16);

  ServerStats s = srv.stats();
  // Sequential keyed steps on one worker: the first dispatch has no sticky
  // entry (miss), every later one lands on it (hit).
  EXPECT_GT(s.session_affinity_hits, 0u);
  EXPECT_GT(s.session_affinity_hits + s.session_affinity_misses, 0u);
  EXPECT_GT(s.sessions.affinity_hit_rate, 0.5);
  ASSERT_EQ(s.models.size(), 1u);
  EXPECT_EQ(s.models[0].session_affinity_hits, s.session_affinity_hits);
}

TEST(Sessions, StatsRollupCountsTokensAndThroughput) {
  LmFixture& f = lm_fixture();
  bswp::SessionServer srv;
  srv.add("lm", f.session, f.lm);
  EXPECT_GE(srv.worker_count(), 1);

  const SessionId a = srv.open("lm");
  const SessionId b = srv.open("lm");
  srv.generate(a, {1}, 12);
  srv.generate(b, {2}, 6);

  const SessionServingStats s = srv.stats().sessions;
  EXPECT_EQ(s.tokens, 18u);
  EXPECT_EQ(s.generations, 2u);
  EXPECT_EQ(s.cancelled, 0u);
  EXPECT_EQ(s.active_sessions, 2u);
  EXPECT_EQ(s.peak_sessions, 2u);
  EXPECT_GT(s.tokens_per_s, 0.0);
  EXPECT_EQ(s.token_latency.count, 18u);
  EXPECT_GT(s.token_latency.p99_us, 0.0);

  const SessionStats sa = srv.session_stats(a);
  EXPECT_EQ(sa.id, a);
  EXPECT_EQ(sa.model, "lm");
  EXPECT_EQ(sa.tokens, 12u);
  EXPECT_EQ(sa.token_latency.count, 12u);
  EXPECT_GT(sa.tokens_per_s, 0.0);
  EXPECT_EQ(srv.session_stats(b).tokens, 6u);
}

}  // namespace
}  // namespace bswp::runtime
