#include "sim/mcu.h"

#include <gtest/gtest.h>

namespace bswp::sim {
namespace {

TEST(CostCounter, AddAndCount) {
  CostCounter c;
  c.add(Event::kMac, 10);
  c.add(Event::kMac, 5);
  c.add(Event::kSramRead);
  EXPECT_EQ(c.count(Event::kMac), 15u);
  EXPECT_EQ(c.count(Event::kSramRead), 1u);
  EXPECT_EQ(c.count(Event::kFlashRandomByte), 0u);
  EXPECT_EQ(c.total_events(), 16u);
}

TEST(CostCounter, ResetAndMerge) {
  CostCounter a, b;
  a.add(Event::kAlu, 3);
  b.add(Event::kAlu, 4);
  b.add(Event::kBranch, 1);
  a.merge(b);
  EXPECT_EQ(a.count(Event::kAlu), 7u);
  EXPECT_EQ(a.count(Event::kBranch), 1u);
  a.reset();
  EXPECT_EQ(a.total_events(), 0u);
}

TEST(CostCounter, TallyHelperNullSafe) {
  tally(nullptr, Event::kMac, 100);  // must not crash
  CostCounter c;
  tally(&c, Event::kMac, 100);
  EXPECT_EQ(c.count(Event::kMac), 100u);
}

TEST(CostCounter, SummaryListsNonZeroEvents) {
  CostCounter c;
  c.add(Event::kMac, 2);
  const std::string s = c.summary();
  EXPECT_NE(s.find("mac=2"), std::string::npos);
  EXPECT_EQ(s.find("sram_read"), std::string::npos);
}

TEST(McuProfile, Table2Specs) {
  const McuProfile large = mc_large();
  const McuProfile small = mc_small();
  EXPECT_EQ(large.sram_bytes, 128u * 1024);
  EXPECT_EQ(large.flash_bytes, 1024u * 1024);
  EXPECT_DOUBLE_EQ(large.freq_mhz, 120.0);
  EXPECT_EQ(small.sram_bytes, 20u * 1024);
  EXPECT_EQ(small.flash_bytes, 128u * 1024);
  EXPECT_DOUBLE_EQ(small.freq_mhz, 72.0);
}

TEST(McuProfile, CyclesAreLinearInEvents) {
  const McuProfile m = mc_large();
  CostCounter c1, c2;
  c1.add(Event::kMac, 100);
  c2.add(Event::kMac, 200);
  EXPECT_DOUBLE_EQ(m.cycles(c2), 2.0 * m.cycles(c1));
}

TEST(McuProfile, SecondsScaleWithFrequency) {
  CostCounter c;
  c.add(Event::kMac, 1000000);
  const double t_large = mc_large().seconds(c);
  const double t_small = mc_small().seconds(c);
  // Same event prices for MACs; the 72 MHz part is slower.
  EXPECT_NEAR(t_small / t_large, 120.0 / 72.0, 1e-9);
}

TEST(McuProfile, FlashRandomSlowerThanSequential) {
  for (const McuProfile& m : {mc_large(), mc_small()}) {
    const double random = m.event_cycles[static_cast<int>(Event::kFlashRandomByte)];
    const double seq = m.event_cycles[static_cast<int>(Event::kFlashSeqByte)];
    const double sram = m.event_cycles[static_cast<int>(Event::kSramRead)];
    EXPECT_GT(random, seq);
    EXPECT_GE(random, sram);  // the gap that LUT caching exploits
  }
}

TEST(MemoryFootprint, FitsChecksBothBudgets) {
  const McuProfile small = mc_small();
  MemoryFootprint ok{100 * 1024, 16 * 1024};
  MemoryFootprint flash_over{300 * 1024, 4 * 1024};
  MemoryFootprint sram_over{64 * 1024, 64 * 1024};
  EXPECT_TRUE(ok.fits(small));
  EXPECT_FALSE(flash_over.fits(small));
  EXPECT_FALSE(sram_over.fits(small));
}

TEST(EventName, AllNamed) {
  for (int i = 0; i < kNumEvents; ++i) {
    EXPECT_STRNE(event_name(static_cast<Event>(i)), "?");
  }
}

}  // namespace
}  // namespace bswp::sim
