// SIMD host-lane tests: the kernels under src/kernels/simd/ must be
// byte-identical to their scalar reference kernels — same outputs AND same
// (MCU-reference) cost counters — on every geometry, and the compile
// pipeline must select / force / serialize lanes correctly. The kernel-level
// identity tests run on every build (the portable `#pragma omp simd` path is
// always compiled); registry and lane-selection tests skip when the SIMD
// family is compiled out (BSWP_SIMD=OFF).
#include <sstream>

#include <gtest/gtest.h>

#include "api/bswp.h"
#include "binary/binarized.h"
#include "core/rng.h"
#include "kernels/baseline_conv.h"
#include "kernels/bitserial_conv.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "models/zoo.h"
#include "runtime/executor.h"
#include "runtime/kernel_backend.h"
#include "runtime/serialize.h"

namespace bswp {
namespace {

using kernels::BitSerialVariant;
using kernels::QView;
namespace simd = kernels::simd;

constexpr BitSerialVariant kAllVariants[] = {
    BitSerialVariant::kNaive, BitSerialVariant::kInputReuse, BitSerialVariant::kCached,
    BitSerialVariant::kCachedPrecompute, BitSerialVariant::kCachedMemoize};

void expect_counters_equal(const sim::CostCounter& a, const sim::CostCounter& b,
                           const std::string& what) {
  for (int e = 0; e < sim::kNumEvents; ++e) {
    EXPECT_EQ(a.count(static_cast<sim::Event>(e)), b.count(static_cast<sim::Event>(e)))
        << what << ": event " << e;
  }
}

// ---------------------------------------------------------------------------
// Kernel-level bit identity
// ---------------------------------------------------------------------------

struct ConvCase {
  int in_ch, out_ch, kh, kw, stride, pad, groups, h, w, in_zp;
};

TEST(SimdKernels, ConvBitIdenticalAcrossGeometries) {
  // Geometries chosen to hit every tail: odd filter counts (4-wide register
  // tile remainder), K % 16 != 0 (16-lane dot tail), groups, strides,
  // padding, 1x1, and a nonzero input zero point.
  const ConvCase cases[] = {
      {8, 5, 3, 3, 1, 1, 1, 9, 7, 0},      // K=72, 5 filters -> dot1 tail
      {24, 16, 3, 3, 2, 0, 1, 11, 11, 3},  // stride 2, offset input
      {12, 8, 3, 3, 1, 1, 4, 8, 8, 0},     // grouped, cg=3 -> K=27
      {16, 16, 1, 1, 1, 0, 1, 6, 6, 0},    // 1x1, K=16 exact
      {6, 4, 5, 5, 1, 2, 2, 12, 10, 1},    // 5x5, cg=3 -> K=75
  };
  Rng rng(11);
  for (const ConvCase& cc : cases) {
    const nn::ConvSpec spec{cc.in_ch, cc.out_ch, cc.kh, cc.kw, cc.stride, cc.pad, cc.groups};
    QTensor input({1, cc.in_ch, cc.h, cc.w}, 8, false);
    input.zero_point = cc.in_zp;
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(256));
    QTensor weights(spec.weight_shape(), 8, true);
    for (auto& v : weights.data)
      v = static_cast<int16_t>(-127 + static_cast<int>(rng.uniform_int(255)));
    const kernels::Requant rq =
        kernels::Requant::uniform(cc.out_ch, 1e-4f, {}, 0.01f, 8, false, false);

    const int oh = spec.out_h(cc.h), ow = spec.out_w(cc.w);
    QTensor out_s({1, cc.out_ch, oh, ow}, 8, false), out_v = out_s;
    QView in = QView::of(input), vs = QView::of(out_s), vv = QView::of(out_v);
    sim::CostCounter cs, cv;
    kernels::baseline_conv2d(in, weights, spec, rq, vs, &cs);
    ScratchArena scratch(simd::simd_conv_scratch_bytes(spec));
    simd::simd_conv2d(in, weights, spec, rq, vv, scratch, &cv);

    const std::string what = "conv in_ch=" + std::to_string(cc.in_ch) +
                             " out_ch=" + std::to_string(cc.out_ch) +
                             " groups=" + std::to_string(cc.groups);
    EXPECT_EQ(out_s.data, out_v.data) << what;
    expect_counters_equal(cs, cv, what);
    EXPECT_LE(scratch.high_water(), simd::simd_conv_scratch_bytes(spec)) << what;
  }
}

TEST(SimdKernels, LinearBitIdenticalIncludingOddTails) {
  Rng rng(12);
  for (const auto [fin, fout] : {std::pair{16, 4}, {37, 7}, {128, 10}, {5, 3}}) {
    QTensor input({1, fin}, 8, false);
    input.zero_point = 2;
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(256));
    QTensor w({fout, fin}, 8, true);
    for (auto& v : w.data) v = static_cast<int16_t>(-127 + static_cast<int>(rng.uniform_int(255)));
    const kernels::Requant rq = kernels::Requant::uniform(fout, 1e-4f, {}, 0.01f, 8, true, false);

    QTensor out_s({1, fout}, 8, true), out_v = out_s;
    QView in = QView::of(input), vs = QView::of(out_s), vv = QView::of(out_v);
    sim::CostCounter cs, cv;
    kernels::baseline_linear(in, w, rq, vs, &cs);
    ScratchArena scratch(simd::simd_linear_scratch_bytes(fin));
    simd::simd_linear(in, w, rq, vv, scratch, &cv);

    const std::string what = "linear " + std::to_string(fin) + "x" + std::to_string(fout);
    EXPECT_EQ(out_s.data, out_v.data) << what;
    expect_counters_equal(cs, cv, what);
    EXPECT_LE(scratch.high_water(), simd::simd_linear_scratch_bytes(fin)) << what;
  }
}

/// Random pooled layer fixture (mirrors the bit-serial kernel tests).
struct PooledFixture {
  nn::ConvSpec spec;
  kernels::PackedIndices indices;
  pool::DotLut lut;
  QTensor input;
  kernels::Requant rq;

  PooledFixture(int channels, int filters, int act_bits, pool::LutOrder order, uint64_t seed) {
    Rng rng(seed);
    spec = nn::ConvSpec{channels, filters, 3, 3, 1, 1, 1};
    pool::WeightPool wp;
    wp.group_size = 8;
    wp.vectors = Tensor({24, 8});  // pool size 24: not a multiple of 8 lanes
    rng.fill_normal(wp.vectors, 0.3f);
    pool::LutOptions lo;
    lo.order = order;
    lut = pool::build_lut(wp, lo);
    pool::PooledLayer pl;
    pl.out_ch = filters;
    pl.channel_groups = channels / 8;
    pl.kh = pl.kw = 3;
    pl.indices.resize(static_cast<std::size_t>(filters) * pl.channel_groups * 9);
    for (auto& idx : pl.indices) idx = static_cast<uint16_t>(rng.uniform_int(24));
    indices = kernels::PackedIndices::pack(pl);
    input = QTensor({1, channels, 7, 6}, act_bits, false);
    input.scale = 0.05f;
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(1u << act_bits));
    rq = kernels::Requant::uniform(filters, 1e-4f, {}, 0.01f, 8, false, true);
  }
};

TEST(SimdKernels, BitSerialConvIdenticalForEveryVariantOrderAndBitwidth) {
  for (pool::LutOrder order : {pool::LutOrder::kInputOriented, pool::LutOrder::kWeightOriented}) {
    for (int act_bits : {1, 4, 8}) {
      // 13 filters: not a multiple of the 8-channel gather step.
      PooledFixture f(16, 13, act_bits, order, 21);
      const int oh = f.spec.out_h(7), ow = f.spec.out_w(6);
      for (BitSerialVariant v : kAllVariants) {
        QTensor out_s({1, 13, oh, ow}, 8, false), out_v = out_s;
        QView in = QView::of(f.input), vs = QView::of(out_s), vv = QView::of(out_v);
        sim::CostCounter cs, cv;
        ScratchArena ss(kernels::bitserial_host_scratch_bytes(13, f.lut.pool_size, 8));
        ScratchArena sv(simd::simd_bitserial_scratch_bytes(13, f.lut.pool_size, 8));
        kernels::bitserial_conv2d(in, f.indices, f.lut, f.spec, f.rq, v, vs, ss, &cs);
        simd::simd_bitserial_conv2d(in, f.indices, f.lut, f.spec, f.rq, v, vv, sv, &cv);
        const std::string what = std::string("bitserial conv variant ") +
                                 kernels::variant_name(v) + " bits " +
                                 std::to_string(act_bits);
        EXPECT_EQ(out_s.data, out_v.data) << what;
        expect_counters_equal(cs, cv, what);
        EXPECT_LE(sv.high_water(), simd::simd_bitserial_scratch_bytes(13, f.lut.pool_size, 8))
            << what;
      }
    }
  }
}

TEST(SimdKernels, BitSerialLinearIdentical) {
  Rng rng(31);
  pool::WeightPool wp;
  wp.group_size = 8;
  wp.vectors = Tensor({24, 8});
  rng.fill_normal(wp.vectors, 0.3f);
  for (pool::LutOrder order : {pool::LutOrder::kInputOriented, pool::LutOrder::kWeightOriented}) {
    pool::LutOptions lo;
    lo.order = order;
    const pool::DotLut lut = pool::build_lut(wp, lo);
    const int fin = 40, fout = 11;  // 5 groups, odd filter count
    pool::PooledLayer pl;
    pl.out_ch = fout;
    pl.channel_groups = fin / 8;
    pl.kh = pl.kw = 1;
    pl.indices.resize(static_cast<std::size_t>(fout) * pl.channel_groups);
    for (auto& idx : pl.indices) idx = static_cast<uint16_t>(rng.uniform_int(24));
    const kernels::PackedIndices indices = kernels::PackedIndices::pack(pl);
    QTensor input({1, fin}, 4, false);
    input.scale = 0.05f;
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(16));
    const kernels::Requant rq = kernels::Requant::uniform(fout, 1e-4f, {}, 0.01f, 8, true, false);

    for (BitSerialVariant v : kAllVariants) {
      QTensor out_s({1, fout}, 8, true), out_v = out_s;
      QView in = QView::of(input), vs = QView::of(out_s), vv = QView::of(out_v);
      sim::CostCounter cs, cv;
      ScratchArena ss(kernels::bitserial_host_scratch_bytes(fout, lut.pool_size, 8));
      ScratchArena sv(simd::simd_bitserial_scratch_bytes(fout, lut.pool_size, 8));
      kernels::bitserial_linear(in, indices, lut, rq, v, vs, ss, &cs);
      simd::simd_bitserial_linear(in, indices, lut, rq, v, vv, sv, &cv);
      EXPECT_EQ(out_s.data, out_v.data) << kernels::variant_name(v);
      expect_counters_equal(cs, cv, std::string("bitserial linear ") + kernels::variant_name(v));
    }
  }
}

TEST(SimdKernels, XnorCountsIdenticalIncludingOddWordCounts) {
  Rng rng(41);
  // in_ch 96 -> 3 words (odd trailing word for the 64-bit pairing); in_ch 40
  // -> 2 words with a 8-lane tail mask; in_ch 24 -> 1 word, tail mask only.
  for (int in_ch : {96, 40, 24}) {
    const nn::ConvSpec spec{in_ch, 9, 3, 3, 1, 1, 1};
    const int h = 7, w = 8;
    const int words = (in_ch + 31) / 32;
    std::vector<uint32_t> in_bits(static_cast<std::size_t>(h) * w * words);
    std::vector<uint32_t> w_bits(static_cast<std::size_t>(spec.out_ch) * 9 * words);
    for (auto& v : in_bits) v = rng.uniform_int(0xffffffffu);
    for (auto& v : w_bits) v = rng.uniform_int(0xffffffffu);
    const int tail = in_ch % 32;
    if (tail != 0) {
      const uint32_t mask = (1u << tail) - 1;
      for (std::size_t i = words - 1; i < in_bits.size(); i += words) in_bits[i] &= mask;
      for (std::size_t i = words - 1; i < w_bits.size(); i += words) w_bits[i] &= mask;
    }
    const int oh = spec.out_h(h), ow = spec.out_w(w);
    std::vector<int32_t> counts_s(static_cast<std::size_t>(spec.out_ch) * oh * ow);
    std::vector<int32_t> counts_v(counts_s.size());
    sim::CostCounter cs, cv;
    binary::xnor_conv2d_counts(in_bits.data(), in_ch, h, w, w_bits.data(), spec, counts_s.data(),
                               &cs);
    simd::simd_xnor_conv2d_counts(in_bits.data(), in_ch, h, w, w_bits.data(), spec,
                                  counts_v.data(), &cv);
    EXPECT_EQ(counts_s, counts_v) << "in_ch=" << in_ch;
    expect_counters_equal(cs, cv, "xnor in_ch=" + std::to_string(in_ch));
  }
}

// ---------------------------------------------------------------------------
// Registry keying and fallback
// ---------------------------------------------------------------------------

TEST(SimdKernels, RegistryResolvesSimdKeysAndFallsBack) {
  using runtime::kAnyVariant;
  using runtime::kSimdKeyOffset;
  using runtime::PlanKind;
  const runtime::KernelRegistry& reg = runtime::KernelRegistry::instance();

  const runtime::KernelBackend* scalar = reg.find(PlanKind::kConvBaseline, kAnyVariant);
  ASSERT_NE(scalar, nullptr);
  const runtime::KernelBackend* vec = reg.find(PlanKind::kConvBaseline, kSimdKeyOffset);
  ASSERT_NE(vec, nullptr);
  if (simd::compiled()) {
    EXPECT_STREQ(vec->name(), "simd/conv");
    EXPECT_STREQ(reg.find(PlanKind::kLinearBaseline, kSimdKeyOffset)->name(), "simd/linear");
    EXPECT_STREQ(reg.find(PlanKind::kConvBinary, kSimdKeyOffset)->name(), "simd/xnor-conv");
    for (BitSerialVariant v : kAllVariants) {
      const int key = kSimdKeyOffset + static_cast<int>(v);
      EXPECT_STREQ(reg.find(PlanKind::kConvBitSerial, key)->name(), "simd/bitserial-conv");
      EXPECT_STREQ(reg.find(PlanKind::kLinearBitSerial, key)->name(), "simd/bitserial-linear");
    }
  } else {
    // Compiled out: a simd key must gracefully resolve to the scalar family.
    EXPECT_EQ(vec, scalar);
  }
  // A kind with no simd registration falls back to its wildcard backend.
  EXPECT_EQ(reg.find(PlanKind::kMaxPool, kSimdKeyOffset),
            reg.find(PlanKind::kMaxPool, kAnyVariant));
}

TEST(SimdKernels, BackendVariantKeyEncodesLane) {
  using runtime::backend_variant_key;
  runtime::LayerPlan p;
  p.kind = runtime::PlanKind::kConvBaseline;
  EXPECT_EQ(backend_variant_key(p), runtime::kAnyVariant);
  p.lane = runtime::HostLane::kSimd;
  EXPECT_EQ(backend_variant_key(p), runtime::kSimdKeyOffset);
  p.kind = runtime::PlanKind::kConvBitSerial;
  p.variant = BitSerialVariant::kCachedPrecompute;
  EXPECT_EQ(backend_variant_key(p),
            runtime::kSimdKeyOffset + static_cast<int>(BitSerialVariant::kCachedPrecompute));
  p.lane = runtime::HostLane::kScalar;
  EXPECT_EQ(backend_variant_key(p), static_cast<int>(BitSerialVariant::kCachedPrecompute));
}

// ---------------------------------------------------------------------------
// Pipeline lane selection, zoo-wide identity, serialization
// ---------------------------------------------------------------------------

/// Deterministic small deployment (golden-harness style).
struct ZooCase {
  nn::Graph graph;
  std::unique_ptr<data::Dataset> cal;
  Tensor image;
};

ZooCase make_case(const models::NamedModel& m, uint64_t seed) {
  ZooCase c;
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  mo.num_classes = 10;
  if (m.on_cifar) {
    data::SyntheticCifarOptions o;
    o.train_size = 48;
    o.image_size = 16;
    c.cal = std::make_unique<data::SyntheticCifar>(o, true);
    mo.in_channels = 3;
  } else {
    data::SyntheticQuickdrawOptions o;
    o.train_size = 48;
    o.image_size = 16;
    o.num_classes = 10;
    c.cal = std::make_unique<data::SyntheticQuickdraw>(o, true);
    mo.in_channels = 1;
  }
  c.graph = m.build(mo);
  Rng rng(seed);
  c.graph.init_weights(rng);
  data::Batch b = c.cal->batch(0, 16);
  c.graph.forward(b.images, true);
  c.image = Tensor({1, mo.in_channels, 16, 16});
  c.cal->sample(0, c.image.data());
  return c;
}

Deployment make_deployment(ZooCase& c) {
  pool::CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 5;
  co.max_cluster_vectors = 3000;
  quant::CalibrateOptions qo;
  qo.num_samples = 24;
  return Deployment::from(c.graph).with_pool(co).calibrate(*c.cal, qo);
}

TEST(SimdKernels, ZooLogitsBitIdenticalAcrossLanes) {
  uint64_t seed = 1234;
  for (const models::NamedModel& m : models::paper_models()) {
    ZooCase c = make_case(m, seed++);
    Deployment dep = make_deployment(c);
    for (int bits : {4, 8}) {
      Session scalar =
          dep.act_bits(bits).host_lanes(runtime::HostLaneSelect::kScalar).compile();
      Session vec = dep.host_lanes(runtime::HostLaneSelect::kSimd).compile();
      Session priced = dep.host_lanes(runtime::HostLaneSelect::kCostModel).compile();
      const QTensor want = scalar.run(c.image);
      EXPECT_EQ(want.data, vec.run(c.image).data) << m.name << " bits " << bits;
      EXPECT_EQ(want.data, priced.run(c.image).data) << m.name << " bits " << bits;
    }
  }
}

TEST(SimdKernels, ForcedLanesStampEveryComputePlan) {
  ZooCase c = make_case(models::paper_models()[0], 99);
  Deployment dep = make_deployment(c);
  Session scalar = dep.host_lanes(runtime::HostLaneSelect::kScalar).compile();
  for (const runtime::LayerPlan& p : scalar.network().plans) {
    EXPECT_EQ(p.lane, runtime::HostLane::kScalar) << p.name;
  }
  Session vec = dep.host_lanes(runtime::HostLaneSelect::kSimd).compile();
  for (const runtime::LayerPlan& p : vec.network().plans) {
    const bool compute = p.kind == runtime::PlanKind::kConvBaseline ||
                         p.kind == runtime::PlanKind::kLinearBaseline ||
                         p.kind == runtime::PlanKind::kConvBitSerial ||
                         p.kind == runtime::PlanKind::kLinearBitSerial;
    if (compute && simd::available()) {
      EXPECT_EQ(p.lane, runtime::HostLane::kSimd) << p.name;
    } else {
      EXPECT_EQ(p.lane, runtime::HostLane::kScalar) << p.name;
    }
  }
}

TEST(SimdKernels, CostModelLaneChoicesAreArgminAndReported) {
  ZooCase c = make_case(models::paper_models()[0], 100);
  Deployment dep = make_deployment(c);
  Session s = dep.host_lanes(runtime::HostLaneSelect::kCostModel).compile();
  const runtime::CompileReport& report = dep.compile_report();
  ASSERT_FALSE(report.lane_choices.empty());
  for (const runtime::LaneChoice& l : report.lane_choices) {
    if (!simd::available()) {
      EXPECT_EQ(l.lane, runtime::HostLane::kScalar) << l.layer;
      continue;
    }
    ASSERT_GT(l.simd_cycles, 0.0) << l.layer;
    ASSERT_GT(l.scalar_cycles, 0.0) << l.layer;
    EXPECT_EQ(l.lane == runtime::HostLane::kSimd, l.simd_cycles < l.scalar_cycles) << l.layer;
  }
  // The summary and registry attribution render the lanes.
  if (simd::available()) {
    EXPECT_NE(report.summary().find("host lane selection:"), std::string::npos);
    bool any_simd_line = false;
    for (const std::string& line : runtime::KernelRegistry::instance().describe(s.network())) {
      if (line.find("[simd]") != std::string::npos &&
          line.find("simd/") != std::string::npos) {
        any_simd_line = true;
      }
    }
    // At least one layer should price onto the SIMD lane on any host where
    // the family is compiled in (the int8 convs vectorize 16-wide).
    EXPECT_TRUE(any_simd_line);
  }
}

TEST(SimdKernels, SerializationRoundTripsLanes) {
  ZooCase c = make_case(models::paper_models()[0], 101);
  Deployment dep = make_deployment(c);
  Session s = dep.host_lanes(runtime::HostLaneSelect::kCostModel).compile();

  std::stringstream buf;
  runtime::save_network(s.network(), buf);
  const runtime::CompiledNetwork loaded = runtime::load_network(buf);
  ASSERT_EQ(loaded.plans.size(), s.network().plans.size());
  for (std::size_t i = 0; i < loaded.plans.size(); ++i) {
    EXPECT_EQ(loaded.plans[i].lane, s.network().plans[i].lane) << loaded.plans[i].name;
  }
  Session reloaded(loaded);
  EXPECT_EQ(s.run(c.image).data, reloaded.run(c.image).data);
}

}  // namespace
}  // namespace bswp
