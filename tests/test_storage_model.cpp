#include "pool/storage_model.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"

namespace bswp::pool {
namespace {

TEST(StorageModel, Eq4MatchesHandComputation) {
  // W = 1M weights, Bw = 8, N = 8, S = 64, Bl = 8.
  const double cr = max_compression_ratio(1000000, 8, 8, 64, 8);
  const double denom = 1000000.0 / 8 * 6 + 256.0 * 64 * 8;
  EXPECT_NEAR(cr, 8000000.0 / denom, 1e-9);
}

TEST(StorageModel, ApproachesEightXForLargeNetworks) {
  // With S=64 (6-bit indices) and N=8 the asymptotic CR is 8*8/6 ≈ 10.7 with
  // packed indices; the paper's "8x over an 8-bit network" figure uses 8-bit
  // index storage: W*8 / (W/8*8) = 8. Check both limits.
  const double cr_packed = max_compression_ratio(100000000, 8, 8, 64, 8);
  EXPECT_NEAR(cr_packed, 8.0 * 8.0 / 6.0, 0.05);
  StorageReport r;
  r.total_params = 100000000;
  r.pooled_params = 100000000;
  r.group_size = 8;
  r.pool_size = 64;
  r.packed_indices = false;
  EXPECT_NEAR(r.compression_ratio(), 8.0, 0.02);
}

TEST(StorageModel, LutOverheadDominatesSmallNets) {
  StorageReport small, big;
  small.total_params = small.pooled_params = 80000;
  big.total_params = big.pooled_params = 3000000;
  EXPECT_GT(small.lut_overhead_fraction(), big.lut_overhead_fraction());
}

TEST(StorageModel, CompressionImprovesWithNetworkSize) {
  double prev = 0.0;
  for (std::size_t w : {80000ull, 170000ull, 660000ull, 2700000ull}) {
    StorageReport r;
    r.total_params = r.pooled_params = w;
    const double cr = r.compression_ratio();
    EXPECT_GT(cr, prev);
    prev = cr;
  }
}

TEST(StorageModel, UncompressedLayersReduceRatio) {
  StorageReport all_pooled, partial;
  all_pooled.total_params = all_pooled.pooled_params = 1000000;
  partial.total_params = 1000000;
  partial.pooled_params = 900000;
  partial.uncompressed_params = 100000;
  EXPECT_GT(all_pooled.compression_ratio(), partial.compression_ratio());
}

TEST(StorageModel, AnalyzeCountsGraphParams) {
  models::ModelOptions mo;
  nn::Graph g = models::build_resnet_s(mo);
  Rng rng(1);
  g.init_weights(rng);
  CodecOptions co;
  co.pool_size = 64;
  co.max_cluster_vectors = 2000;
  co.kmeans_iters = 3;
  PooledNetwork net = build_weight_pool(g, co);
  StorageReport r = analyze_storage(g, net);
  EXPECT_EQ(r.total_params, r.pooled_params + r.uncompressed_params);
  // ResNet-s is ~170k params (DESIGN.md §3 model inventory).
  EXPECT_GT(r.total_params, 150000u);
  EXPECT_LT(r.total_params, 200000u);
  EXPECT_GT(r.compression_ratio(), 3.0);
  EXPECT_LT(r.compression_ratio(), 9.0);
}

TEST(StorageModel, BitsBreakdownConsistent) {
  StorageReport r;
  r.total_params = 500000;
  r.pooled_params = 400000;
  r.uncompressed_params = 100000;
  EXPECT_NEAR(r.compressed_bits(),
              r.index_bits() + r.lut_storage_bits() + r.uncompressed_bits(), 1e-6);
  EXPECT_NEAR(r.original_bits(), 500000.0 * 8, 1e-6);
}

TEST(StorageModel, LargerLutBitwidthMoreOverhead) {
  StorageReport r8, r16;
  r8.total_params = r8.pooled_params = 1000000;
  r16.total_params = r16.pooled_params = 1000000;
  r16.lut_bits = 16;
  EXPECT_GT(r16.lut_overhead_fraction(), r8.lut_overhead_fraction());
  EXPECT_LT(r16.compression_ratio(), r8.compression_ratio());
}

TEST(StorageModel, BiggerPoolLowersCompression) {
  double prev = 1e9;
  for (int s : {32, 64, 128}) {
    StorageReport r;
    r.total_params = r.pooled_params = 1000000;
    r.pool_size = s;
    EXPECT_LT(r.compression_ratio(), prev);
    prev = r.compression_ratio();
  }
}

}  // namespace
}  // namespace bswp::pool
