#include "core/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bswp {
namespace {

TEST(Tensor, ConstructsWithShapeAndZeros) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.size(), 120u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({3, 3}, 2.5f);
  EXPECT_EQ(t.size(), 9u);
  EXPECT_EQ(t.at(2, 2), 2.5f);
}

TEST(Tensor, ValueConstructorChecksCount) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, Rank4IndexingIsRowMajor) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, Rank2Indexing) {
  Tensor t({3, 4});
  t.at(2, 1) = -1.5f;
  EXPECT_EQ(t[2 * 4 + 1], -1.5f);
}

TEST(Tensor, WrongRankAccessorThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(0, 0, 0, 0), std::invalid_argument);
  Tensor u({1, 1, 1, 1});
  EXPECT_THROW(u.at(0, 0), std::invalid_argument);
}

TEST(Tensor, OutOfRangeIndexThrows) {
  Tensor t({2, 2, 2, 2});
  EXPECT_THROW(t.at(2, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0, 0, 0, -1), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at(1, 5) = 3.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.at(2, 3), 3.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, ArithmeticHelpers) {
  Tensor a({4}, 1.0f);
  Tensor b({4}, 2.0f);
  a.add_(b);
  EXPECT_EQ(a[0], 3.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a[0], 4.0f);
  a.scale_(0.25f);
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, SizeMismatchThrows) {
  Tensor a({4});
  Tensor b({5});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.axpy_(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Statistics) {
  Tensor t({4}, std::vector<float>{-3.0f, 1.0f, 2.0f, 4.0f});
  EXPECT_EQ(t.min(), -3.0f);
  EXPECT_EQ(t.max(), 4.0f);
  EXPECT_EQ(t.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(9.0f + 1 + 4 + 16), 1e-6);
}

TEST(Tensor, ShapeStr) {
  Tensor t({1, 2, 3});
  EXPECT_EQ(t.shape_str(), "[1,2,3]");
}

TEST(QTensor, RangesForSignedAndUnsigned) {
  QTensor s({4}, 8, /*is_signed=*/true);
  EXPECT_EQ(s.qmin(), -128);
  EXPECT_EQ(s.qmax(), 127);
  QTensor u({4}, 4, /*is_signed=*/false);
  EXPECT_EQ(u.qmin(), 0);
  EXPECT_EQ(u.qmax(), 15);
}

TEST(QTensor, DequantizeAppliesScaleAndZeroPoint) {
  QTensor q({2}, 8, false);
  q.scale = 0.5f;
  q.zero_point = 4;
  q.data = {4, 10};
  Tensor t = q.dequantize();
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 3.0f);
}

TEST(ShapeNumel, EmptyShapeIsZero) {
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_numel({3}), 3u);
  EXPECT_EQ(shape_numel({0, 5}), 0u);
}

}  // namespace
}  // namespace bswp
