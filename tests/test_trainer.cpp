#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"

namespace bswp::nn {
namespace {

data::SyntheticCifarOptions tiny_data() {
  data::SyntheticCifarOptions o;
  o.num_classes = 4;
  o.train_size = 256;
  o.test_size = 128;
  o.image_size = 16;
  o.noise_stddev = 0.05f;
  return o;
}

Graph small_cnn(int classes) {
  Graph g;
  int x = g.input(3, 16, 16);
  x = g.conv2d(x, 8, 3, 1, 1);
  x = g.batchnorm(x);
  x = g.relu(x);
  x = g.maxpool(x, 2, 2);
  x = g.conv2d(x, 16, 3, 1, 1);
  x = g.batchnorm(x);
  x = g.relu(x);
  x = g.global_avgpool(x);
  g.linear(x, classes);
  return g;
}

TEST(Trainer, LossDecreasesAndBeatsChance) {
  data::SyntheticCifar train(tiny_data(), true);
  data::SyntheticCifar test(tiny_data(), false);
  Graph g = small_cnn(4);
  Rng rng(10);
  g.init_weights(rng);

  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  cfg.lr = 0.08f;
  Trainer trainer(cfg);
  TrainStats stats = trainer.fit(g, train, test);

  ASSERT_EQ(stats.epoch_loss.size(), 6u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
  // 4 classes: chance is 25%; a working trainer does far better.
  EXPECT_GT(stats.final_test_acc, 50.0f);
}

TEST(Trainer, PostStepHookRunsEveryStep) {
  data::SyntheticCifarOptions o = tiny_data();
  o.train_size = 64;
  data::SyntheticCifar train(o, true);
  data::SyntheticCifar test(o, false);
  Graph g = small_cnn(4);
  Rng rng(11);
  g.init_weights(rng);

  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  int calls = 0;
  Trainer trainer(cfg);
  trainer.set_post_step([&calls](Graph&) { ++calls; });
  trainer.fit(g, train, test);
  EXPECT_EQ(calls, 2 * (64 / 32));
}

TEST(Trainer, MaxBatchesCapRespected) {
  data::SyntheticCifarOptions o = tiny_data();
  o.train_size = 256;
  data::SyntheticCifar train(o, true);
  data::SyntheticCifar test(o, false);
  Graph g = small_cnn(4);
  Rng rng(12);
  g.init_weights(rng);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.max_batches_per_epoch = 3;
  int calls = 0;
  Trainer trainer(cfg);
  trainer.set_post_step([&calls](Graph&) { ++calls; });
  trainer.fit(g, train, test);
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, DeterministicGivenSeed) {
  data::SyntheticCifarOptions o = tiny_data();
  o.train_size = 96;
  data::SyntheticCifar train(o, true);
  data::SyntheticCifar test(o, false);

  auto run_once = [&]() {
    Graph g = small_cnn(4);
    Rng rng(13);
    g.init_weights(rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 32;
    cfg.seed = 77;
    Trainer trainer(cfg);
    return trainer.fit(g, train, test).final_test_acc;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Evaluate, PerfectOnMemorizedBatch) {
  // A linear model on one-hot-ish inputs can reach 100% on its train data.
  data::SyntheticCifarOptions o = tiny_data();
  o.train_size = 32;
  o.test_size = 32;
  data::SyntheticCifar ds(o, true);
  Graph g = small_cnn(4);
  Rng rng(14);
  g.init_weights(rng);
  const float acc = evaluate(g, ds);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 100.0f);
}

}  // namespace
}  // namespace bswp::nn
